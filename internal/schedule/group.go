package schedule

import (
	"fmt"
	"math"
	"repro/internal/affine"
	"sort"

	"repro/internal/pipeline"
)

// BuildGroups runs Algorithm 1 of the paper: starting with one group per
// stage, it repeatedly merges a group into its single child group when the
// stages can be aligned and scaled to constant dependence vectors and the
// estimated redundant computation (overlap as a fraction of the tile size)
// stays below the threshold.
func BuildGroups(g *pipeline.Graph, est map[string]int64, opts Options) (*Grouping, error) {
	opts = opts.withDefaults()
	if opts.Auto && !opts.DisableFusion {
		// Options.Auto swaps the threshold heuristic for the cost-model
		// beam search (search.go); DisableFusion keeps the trivial
		// partition, which the search could only reproduce.
		return SearchGroups(g, est, opts)
	}
	gr := &Grouping{
		ByName: make(map[string]*Group),
		Graph:  g,
		Est:    est,
	}
	nextID := 0
	for _, name := range g.Order {
		grp := &Group{ID: nextID, Members: []string{name}, Anchor: name}
		nextID++
		gr.Groups = append(gr.Groups, grp)
		gr.ByName[name] = grp
	}
	if !opts.DisableFusion {
		for {
			merged, err := tryMerge(gr, est, opts, &nextID)
			if err != nil {
				return nil, err
			}
			if !merged {
				break
			}
		}
	}
	finalizeGroups(gr, est, opts)
	if err := orderGroups(gr); err != nil {
		return nil, err
	}
	return gr, nil
}

// tryMerge performs one iteration of Algorithm 1's repeat loop: it scans
// candidate groups (single child, mergeable) in decreasing size order and
// merges the first profitable one. Returns false when converged.
func tryMerge(gr *Grouping, est map[string]int64, opts Options, nextID *int) (bool, error) {
	g := gr.Graph
	// Candidates: groups with exactly one child group (line 6).
	type cand struct {
		grp   *Group
		child *Group
		size  int64
	}
	var cands []cand
	for _, grp := range gr.Groups {
		children := childGroups(g, gr.ByName, grp)
		if len(children) != 1 {
			continue
		}
		if !mergeableGroup(g, grp, est, opts, true) || !mergeableGroup(g, children[0], est, opts, false) {
			continue
		}
		cands = append(cands, cand{grp: grp, child: children[0], size: groupSize(g, grp.Members, est)})
	}
	// Sort by decreasing size (line 7); break ties deterministically.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return cands[i].grp.Anchor < cands[j].grp.Anchor
	})
	for _, c := range cands {
		merged, ratios, scales, ok, err := evaluateMerge(gr, c.grp, c.child, est, opts)
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		// Perform the merge (lines 13-16).
		newGrp := &Group{
			ID:           *nextID,
			Members:      merged,
			Anchor:       c.child.Anchor,
			Scales:       scales,
			Tiled:        true,
			OverlapRatio: ratios,
		}
		*nextID++
		anchorBox, err := domainAt(g.Stages[newGrp.Anchor], est)
		if err != nil {
			return false, err
		}
		newGrp.TileSizes = effectiveTileSizes(anchorBox, opts)
		replaceGroups(gr, c.grp, c.child, newGrp)
		return true, nil
	}
	return false, nil
}

// mergeableGroup reports whether a group may participate in a merge at all:
// no accumulators, no self-referencing stages, and (for the parent side)
// not smaller than the minimum size.
func mergeableGroup(g *pipeline.Graph, grp *Group, est map[string]int64, opts Options, isParent bool) bool {
	for _, m := range grp.Members {
		st := g.Stages[m]
		if st.IsAccumulator() || st.SelfRef {
			return false
		}
	}
	if isParent && groupSize(g, grp.Members, est) < opts.MinSize {
		return false
	}
	return true
}

// evaluateMerge checks the two merge criteria of Algorithm 1 (lines 10-12):
// constant dependence vectors after alignment/scaling, and relative overlap
// below the threshold.
func evaluateMerge(gr *Grouping, parent, child *Group, est map[string]int64, opts Options) (members []string, ratios []float64, scales map[string][]DimScale, ok bool, err error) {
	g := gr.Graph
	memberSet := make(map[string]bool, len(parent.Members)+len(child.Members))
	for _, m := range parent.Members {
		memberSet[m] = true
	}
	for _, m := range child.Members {
		memberSet[m] = true
	}
	anchor := child.Anchor
	scales, serr := computeScales(g, memberSet, anchor)
	if serr != nil {
		return nil, nil, nil, false, nil // cannot align/scale: not mergeable
	}
	members = sortedMembers(g, memberSet)
	anchorBox, err := domainAt(g.Stages[anchor], est)
	if err != nil {
		return nil, nil, nil, false, err
	}
	tileSizes := effectiveTileSizes(anchorBox, opts)
	tiled := false
	for _, ts := range tileSizes {
		if ts > 0 {
			tiled = true
		}
	}
	if !tiled {
		return nil, nil, nil, false, nil // nothing to tile: keep separate
	}
	trial := &Group{Members: members, Anchor: anchor, Scales: scales, Tiled: true, TileSizes: tileSizes}
	ratios, rerr := estimateOverlap(g, trial, est, opts)
	if rerr != nil {
		return nil, nil, nil, false, nil
	}
	for _, r := range ratios {
		if r >= opts.OverlapThreshold {
			return nil, nil, nil, false, nil
		}
	}
	return members, ratios, scales, true, nil
}

// estimateOverlap computes, per anchor dimension, the redundant-computation
// fraction of an interior tile: for each member and aligned dimension, the
// required extent is mapped into the anchor's (common, scaled) space and
// compared against the tile size (Section 3.5: "the size of the overlapping
// region as a fraction of the tile size").
func estimateOverlap(g *pipeline.Graph, grp *Group, est map[string]int64, opts Options) ([]float64, error) {
	tp, err := NewTilePlan(g, grp, est)
	if err != nil {
		return nil, err
	}
	idx := make([]int64, len(tp.TileCounts))
	for d, c := range tp.TileCounts {
		idx[d] = c / 2 // interior tile
	}
	req, err := tp.Required(idx, nil)
	if err != nil {
		return nil, err
	}
	ratios := make([]float64, len(tp.AnchorBox))
	for _, m := range grp.Members {
		box := req[m]
		if box == nil || box.Empty() {
			continue
		}
		for d, ds := range grp.Scales[m] {
			if ds.AnchorDim < 0 {
				if box[d].Size() > opts.MaxUnalignedExtent {
					return nil, fmt.Errorf("unaligned dimension of %s too wide (%d)", m, box[d].Size())
				}
				continue
			}
			ts := tp.TileSizes[ds.AnchorDim]
			if ts == 0 {
				continue // untiled dimension: no overlap
			}
			common := float64(box[d].Size()) / ds.Scale.Float()
			r := (common - float64(ts)) / float64(ts)
			if r > ratios[ds.AnchorDim] {
				ratios[ds.AnchorDim] = r
			}
		}
	}
	for d := range ratios {
		if math.IsNaN(ratios[d]) || math.IsInf(ratios[d], 0) {
			return nil, fmt.Errorf("degenerate overlap in dimension %d", d)
		}
	}
	return ratios, nil
}

// effectiveTileSizes assigns the configured tile sizes to the anchor's
// dimensions, outermost first; dimensions with extent below MinTileExtent
// (e.g. color channels) stay untiled (0). The last configured size repeats
// when the anchor has more tilable dimensions than sizes.
func effectiveTileSizes(anchorBox affine.Box, opts Options) []int64 {
	out := make([]int64, len(anchorBox))
	next := 0
	for d, r := range anchorBox {
		if r.Size() < opts.MinTileExtent {
			out[d] = 0
			continue
		}
		if next < len(opts.TileSizes) {
			out[d] = opts.TileSizes[next]
			next++
		} else if len(opts.TileSizes) > 0 {
			out[d] = opts.TileSizes[len(opts.TileSizes)-1]
		}
		if out[d] >= r.Size() {
			out[d] = 0 // tile covers the whole extent: untiled
		}
	}
	return out
}

func oneRat() affine.Rational { return affine.One }

// replaceGroups removes a and b from the grouping and installs merged.
func replaceGroups(gr *Grouping, a, b, merged *Group) {
	out := gr.Groups[:0]
	for _, grp := range gr.Groups {
		if grp.ID != a.ID && grp.ID != b.ID {
			out = append(out, grp)
		}
	}
	gr.Groups = append(out, merged)
	for _, m := range merged.Members {
		gr.ByName[m] = merged
	}
}

// finalizeGroups fills in tile sizes and scales for the remaining
// single-stage groups. Single-stage groups are executed as plain
// (row-parallel) loop nests without overlapped tiling.
func finalizeGroups(gr *Grouping, est map[string]int64, opts Options) {
	for _, grp := range gr.Groups {
		if len(grp.Members) == 1 {
			grp.Tiled = false
			st := gr.Graph.Stages[grp.Anchor]
			ds := make([]DimScale, st.Decl.NumDims())
			for d := range ds {
				ds[d] = DimScale{AnchorDim: d, Scale: oneRat()}
			}
			grp.Scales = map[string][]DimScale{grp.Anchor: ds}
			grp.TileSizes = make([]int64, st.Decl.NumDims())
		}
	}
}

// orderGroups topologically sorts the quotient DAG (Kahn's algorithm).
func orderGroups(gr *Grouping) error {
	g := gr.Graph
	indeg := make(map[int]int)
	succs := make(map[int][]*Group)
	for _, grp := range gr.Groups {
		indeg[grp.ID] = indeg[grp.ID]
		for _, child := range childGroups(g, gr.ByName, grp) {
			succs[grp.ID] = append(succs[grp.ID], child)
			indeg[child.ID]++
		}
	}
	var ready []*Group
	for _, grp := range gr.Groups {
		if indeg[grp.ID] == 0 {
			ready = append(ready, grp)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].Anchor < ready[j].Anchor })
	var ordered []*Group
	for len(ready) > 0 {
		grp := ready[0]
		ready = ready[1:]
		ordered = append(ordered, grp)
		for _, s := range succs[grp.ID] {
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				ready = append(ready, s)
			}
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i].Anchor < ready[j].Anchor })
	}
	if len(ordered) != len(gr.Groups) {
		return fmt.Errorf("schedule: cycle in the quotient group graph")
	}
	gr.Groups = ordered
	for i, grp := range gr.Groups {
		grp.ID = i
	}
	return nil
}
