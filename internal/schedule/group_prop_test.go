package schedule

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/affine"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/pipeline"
)

// randGroupingPipeline builds a random DAG of same-resolution stages
// (pointwise combines and small stencils) for grouping-invariant checks.
func randGroupingPipeline(t *testing.T, r *rand.Rand, nStages int) *pipeline.Graph {
	t.Helper()
	const N = 256
	b := dsl.NewBuilder()
	b.Image("I", expr.Float, affine.Const(N), affine.Const(N))
	x, y := b.Var("x"), b.Var("y")
	type st struct {
		f *dsl.Function
		m int64
	}
	var stages []st
	at := func(s st, ax, ay expr.Expr) expr.Expr {
		if s.f == nil {
			return expr.Access{Target: "I", Args: []expr.Expr{ax, ay}}
		}
		return s.f.At(ax, ay)
	}
	pick := func() st {
		if len(stages) == 0 || r.Intn(3) == 0 {
			return st{}
		}
		return stages[r.Intn(len(stages))]
	}
	for i := 0; i < nStages; i++ {
		p, q := pick(), pick()
		m := maxI64g(p.m, q.m) + 1
		if m > N/4 {
			continue
		}
		f := b.Func(fmt.Sprintf("s%d", i), expr.Float, []*dsl.Variable{x, y},
			[]dsl.Interval{dsl.ConstSpan(m, N-1-m), dsl.ConstSpan(m, N-1-m)})
		def := dsl.Add(
			dsl.Mul(0.25, at(p, dsl.Sub(x, 1), dsl.E(y))),
			dsl.Mul(0.75, at(q, dsl.E(x), dsl.Add(y, 1))))
		f.Define(dsl.Case{E: def})
		stages = append(stages, st{f: f, m: m})
	}
	if len(stages) == 0 {
		t.Skip("degenerate")
	}
	g, err := pipeline.Build(b, stages[len(stages)-1].f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func maxI64g(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestGroupingInvariants checks, over random DAGs, the structural
// guarantees Algorithm 1 must provide: the groups partition the stage set,
// every group's members are connected producers of its anchor, the quotient
// graph is acyclic and Groups is a valid topological order of it.
func TestGroupingInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := randGroupingPipeline(t, r, 3+r.Intn(12))
		gr, err := BuildGroups(g, map[string]int64{}, Options{
			TileSizes: []int64{16, 32}, MinTileExtent: 8, MinSize: 8,
			OverlapThreshold: 0.2 + 0.3*r.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Partition: every stage in exactly one group.
		seen := map[string]int{}
		for _, grp := range gr.Groups {
			for _, m := range grp.Members {
				seen[m]++
				if gr.ByName[m] != grp {
					t.Fatalf("ByName[%s] inconsistent", m)
				}
			}
			// Anchor is a member with no in-group consumers.
			anchorHasInternalConsumer := false
			memberSet := map[string]bool{}
			for _, m := range grp.Members {
				memberSet[m] = true
			}
			for _, c := range g.Stages[grp.Anchor].Consumers {
				if memberSet[c] {
					anchorHasInternalConsumer = true
				}
			}
			if anchorHasInternalConsumer {
				t.Fatalf("anchor %s consumed inside its own group", grp.Anchor)
			}
		}
		if len(seen) != len(g.Stages) {
			t.Fatalf("groups cover %d of %d stages", len(seen), len(g.Stages))
		}
		for m, n := range seen {
			if n != 1 {
				t.Fatalf("stage %s appears in %d groups", m, n)
			}
		}
		// Topological order of the quotient: every producer's group index
		// is <= the consumer's.
		pos := map[string]int{}
		for i, grp := range gr.Groups {
			for _, m := range grp.Members {
				pos[m] = i
			}
		}
		for name, st := range g.Stages {
			for _, p := range st.Producers {
				if pos[p] > pos[name] {
					t.Fatalf("group order violates dependence %s -> %s", p, name)
				}
			}
		}
		// Fused groups are valid: tile plans build and satisfy the
		// coverage/soundness invariants checked elsewhere; here just build.
		for _, grp := range gr.Groups {
			if grp.Tiled {
				if _, err := NewTilePlan(g, grp, map[string]int64{}); err != nil {
					t.Fatalf("tile plan for %v: %v", grp.Members, err)
				}
			}
		}
	}
}
