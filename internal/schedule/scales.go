package schedule

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/pipeline"
)

// computeScales performs the alignment and scaling analysis of Section 3.3
// for a prospective group: starting from the anchor (scale 1 on every
// dimension), it propagates sampling-rate ratios backwards through the
// in-group accesses, assigning every member dimension an anchor dimension
// and a rational scale. It fails — meaning the stages cannot be fused with
// overlapped tiling — when an in-group access is non-affine or has a
// parametric offset, when a sampling rate is non-positive (mirrored
// accesses), or when two paths assign inconsistent scales (the paper's
// f(x,y) = g(x,y) + g(y,x) and f(x) = g(x/2) + g(x/4) examples).
func computeScales(g *pipeline.Graph, members map[string]bool, anchor string) (map[string][]DimScale, error) {
	anchorStage := g.Stages[anchor]
	scales := make(map[string][]DimScale, len(members))
	as := make([]DimScale, anchorStage.Decl.NumDims())
	for d := range as {
		as[d] = DimScale{AnchorDim: d, Scale: affine.One}
	}
	scales[anchor] = as

	// Process members in reverse topological order (consumers before
	// producers) so each consumer's scales are final before propagating.
	order := sortedMembers(g, members)
	for i := len(order) - 1; i >= 0; i-- {
		cname := order[i]
		cs, ok := scales[cname]
		if !ok {
			return nil, fmt.Errorf("schedule: member %s unreachable from anchor %s", cname, anchor)
		}
		c := g.Stages[cname]
		for target, accs := range stageAccessMap(c) {
			if !members[target] || target == cname {
				continue
			}
			p := g.Stages[target]
			ps := scales[target]
			if ps == nil {
				ps = make([]DimScale, p.Decl.NumDims())
				for d := range ps {
					ps[d] = DimScale{AnchorDim: -1}
				}
				scales[target] = ps
			}
			for _, aa := range accs {
				if !aa.OK {
					return nil, fmt.Errorf("schedule: %s reads %s through a non-affine access", cname, target)
				}
				if _, isConst := aa.Acc.Off.ConstVal(); !isConst {
					return nil, fmt.Errorf("schedule: %s reads %s with a parametric offset (%s)", cname, target, aa.Acc.Off)
				}
				ds, err := accessDimScale(cs, aa.Acc)
				if err != nil {
					return nil, fmt.Errorf("schedule: %s -> %s: %v", cname, target, err)
				}
				if err := mergeDimScale(&ps[aa.ProducerDim], ds); err != nil {
					return nil, fmt.Errorf("schedule: %s -> %s dim %d: %v", cname, target, aa.ProducerDim, err)
				}
			}
		}
	}
	for _, m := range order {
		if scales[m] == nil {
			return nil, fmt.Errorf("schedule: member %s not connected to anchor %s", m, anchor)
		}
	}
	return scales, nil
}

// accessDimScale derives the producer-dimension scale implied by one access
// from a consumer with dimension scales cs.
func accessDimScale(cs []DimScale, acc affine.Access) (DimScale, error) {
	if acc.Var < 0 {
		return DimScale{AnchorDim: -1}, nil // constant index: unaligned
	}
	if acc.Var >= len(cs) {
		return DimScale{}, fmt.Errorf("access uses nonexistent consumer dimension %d", acc.Var)
	}
	c := cs[acc.Var]
	if c.AnchorDim == -1 {
		return DimScale{AnchorDim: -1}, nil
	}
	if acc.Coeff <= 0 {
		return DimScale{}, fmt.Errorf("non-positive sampling rate %d/%d", acc.Coeff, acc.Div)
	}
	return DimScale{AnchorDim: c.AnchorDim, Scale: c.Scale.Mul(acc.Rate())}, nil
}

// mergeDimScale reconciles a new scale assignment with an existing one.
// Aligned assignments win over unaligned; two aligned assignments must
// agree exactly.
func mergeDimScale(slot *DimScale, ds DimScale) error {
	if ds.AnchorDim == -1 {
		return nil // unaligned adds no constraint
	}
	if slot.AnchorDim == -1 {
		*slot = ds
		return nil
	}
	if slot.AnchorDim != ds.AnchorDim {
		return fmt.Errorf("aligned to two anchor dimensions (%d and %d)", slot.AnchorDim, ds.AnchorDim)
	}
	if !slot.Scale.Equal(ds.Scale) {
		return fmt.Errorf("inconsistent scales (%s and %s)", slot.Scale, ds.Scale)
	}
	return nil
}
