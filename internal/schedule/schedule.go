// Package schedule implements the core optimizations of the paper:
// alignment and scaling of stage schedules (Section 3.3), construction of
// overlapped tiles for groups of heterogeneous stages (Section 3.4), and the
// greedy grouping heuristic of Algorithm 1 (Section 3.5).
//
// Where the paper manipulates scheduling hyperplanes through ISL, this
// implementation works directly on the box domains the pipelines use: tile
// shapes are obtained by propagating required intervals backwards through
// the quasi-affine accesses, stage by stage, which yields the same tight
// overlapped-tile regions as the per-level dependence-vector analysis of
// Figure 6 (see DESIGN.md, substitution note 1).
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/affine"
	"repro/internal/expr"
	"repro/internal/pipeline"
)

// DimScale records how one dimension of a group member tracks the group
// anchor's iteration space: stage_dim ≈ Scale · anchor_dim + offset. It is
// the alignment/scaling information of Section 3.3.
type DimScale struct {
	AnchorDim int             // anchor dimension this stage dim is aligned to; -1 if unaligned
	Scale     affine.Rational // sampling-rate ratio relative to the anchor
}

// Group is a set of stages fused together and executed with overlapped
// tiling. The zero group (single stage, untiled) is also used for stages
// excluded from fusion (accumulators, self-referencing and tiny stages).
type Group struct {
	ID      int
	Members []string // topological order, producers first
	Anchor  string   // the group's sink stage; its domain defines the tile space
	// Scales maps each member to its per-dimension alignment/scaling
	// relative to the anchor. Populated for multi-stage groups.
	Scales map[string][]DimScale
	// Tiled reports whether the group executes with overlapped tiling.
	Tiled bool
	// TileSizes has one entry per anchor dimension (0 = dimension untiled).
	TileSizes []int64
	// OverlapRatio per anchor dimension: redundant-computation fraction
	// estimated at the parameter estimates (Algorithm 1 line 11).
	OverlapRatio []float64
	// Cost is the auto-scheduler's modeled cost breakdown for this group,
	// populated when Options.Auto drove the grouping (nil under the plain
	// Algorithm 1 heuristic).
	Cost *GroupCost
}

// Grouping is the result of Algorithm 1: a partition of the pipeline's
// stages into groups, in a valid execution order.
type Grouping struct {
	Groups []*Group          // topological order over the quotient DAG
	ByName map[string]*Group // stage name -> its group
	Graph  *pipeline.Graph   // underlying pipeline
	Est    map[string]int64  // parameter estimates used

	// Searched reports that the cost-model beam search (Options.Auto)
	// produced this grouping; ModelCost is its weighted model cost and
	// Search the search-effort counters. All zero under Algorithm 1.
	Searched  bool
	ModelCost float64
	Search    *SearchStats
}

// Options tunes grouping and tiling.
type Options struct {
	// TileSizes are assigned to the anchor's tilable dimensions from
	// outermost to innermost; the last entry repeats if there are more
	// tilable dimensions than entries. Default {32, 256} (the paper's
	// Figure 7 uses 32×256 for Harris).
	TileSizes []int64
	// OverlapThreshold is Algorithm 1's o_thresh (paper autotunes over
	// {0.2, 0.4, 0.5}).
	OverlapThreshold float64
	// MinSize: stages whose domain (at the estimates) is smaller than this
	// are never merged (the paper keeps "functions of very small size",
	// such as lookup tables, out of groups).
	MinSize int64
	// MinTileExtent: dimensions with extent below this stay untiled.
	MinTileExtent int64
	// MaxUnalignedExtent bounds the extent of unaligned member dimensions
	// (e.g. a channel dimension accessed at constant indices) that a tile
	// must materialize fully.
	MaxUnalignedExtent int64
	// DisableFusion keeps every stage in its own group (the PolyMage
	// "base" variant of Figure 10, which still inlines but does not group,
	// tile or optimize storage).
	DisableFusion bool
	// Auto replaces Algorithm 1's single-threshold greedy merge with the
	// cost-model beam search (cost.go / search.go): grouping candidates ×
	// per-group tile sizes are searched under an analytical model of
	// memory traffic, halo recompute, parallelism and scratch footprint.
	// OverlapThreshold is ignored when set; the other knobs (MinSize,
	// MinTileExtent, MaxUnalignedExtent, DisableFusion) still apply.
	Auto bool
	// AutoOpts tunes the search (beam width, tile candidates, fitted cost
	// weights); nil uses DefaultAutoOptions.
	AutoOpts *AutoOptions
}

// DefaultOptions mirrors the paper's defaults.
func DefaultOptions() Options {
	return Options{
		TileSizes:          []int64{32, 256},
		OverlapThreshold:   0.4,
		MinSize:            1024,
		MinTileExtent:      32,
		MaxUnalignedExtent: 8,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if len(o.TileSizes) == 0 {
		o.TileSizes = d.TileSizes
	}
	if o.OverlapThreshold == 0 {
		o.OverlapThreshold = d.OverlapThreshold
	}
	if o.MinSize == 0 {
		o.MinSize = d.MinSize
	}
	if o.MinTileExtent == 0 {
		o.MinTileExtent = d.MinTileExtent
	}
	if o.MaxUnalignedExtent == 0 {
		o.MaxUnalignedExtent = d.MaxUnalignedExtent
	}
	return o
}

// argAccess is one index expression of one access: which producer dimension
// it indexes and its quasi-affine form (OK reports whether it has one).
type argAccess struct {
	ProducerDim int
	Acc         affine.Access
	OK          bool
}

// stageAccessMap extracts, for every target a stage reads (stages and
// images, conditions included), the list of per-dimension accesses.
func stageAccessMap(st *pipeline.Stage) map[string][]argAccess {
	out := make(map[string][]argAccess)
	record := func(e expr.Expr) bool {
		a, ok := e.(expr.Access)
		if !ok {
			return true
		}
		for d, arg := range a.Args {
			aa := argAccess{ProducerDim: d}
			aa.Acc, aa.OK = expr.ToAffineAccess(arg)
			out[a.Target] = append(out[a.Target], aa)
		}
		return true
	}
	for _, e := range st.Exprs() {
		expr.Walk(e, record)
	}
	for _, c := range st.Cases {
		if c.Cond != nil {
			expr.WalkCond(c.Cond, record)
		}
	}
	return out
}

// domainAt evaluates a stage's domain at the estimates.
func domainAt(st *pipeline.Stage, est map[string]int64) (affine.Box, error) {
	b, err := st.Decl.Domain().Eval(est)
	if err != nil {
		return nil, fmt.Errorf("schedule: stage %s: %v", st.Name, err)
	}
	return b, nil
}

// groupSize is the total number of domain points of the group's members at
// the estimates (Algorithm 1 sorts candidates by this).
func groupSize(g *pipeline.Graph, members []string, est map[string]int64) int64 {
	var n int64
	for _, m := range members {
		if b, err := domainAt(g.Stages[m], est); err == nil {
			n += b.Size()
		}
	}
	return n
}

// sortedMembers returns the members in pipeline topological order.
func sortedMembers(g *pipeline.Graph, members map[string]bool) []string {
	out := make([]string, 0, len(members))
	for _, n := range g.Order {
		if members[n] {
			out = append(out, n)
		}
	}
	return out
}

// childGroups returns the set of distinct groups that consume any member of
// grp (excluding grp itself).
func childGroups(g *pipeline.Graph, byName map[string]*Group, grp *Group) []*Group {
	seen := make(map[int]*Group)
	for _, m := range grp.Members {
		for _, c := range g.Stages[m].Consumers {
			cg := byName[c]
			if cg != nil && cg.ID != grp.ID {
				seen[cg.ID] = cg
			}
		}
	}
	out := make([]*Group, 0, len(seen))
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, seen[id])
	}
	return out
}
