package schedule

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/inline"
	"repro/internal/pipeline"
)

var est = map[string]int64{"R": 512, "C": 512}

// harrisGraph builds the (inlined) Harris pipeline: Ix, Iy, Sxx, Sxy, Syy,
// harris — the stage structure of Figure 7.
func harrisGraph(t *testing.T) *pipeline.Graph {
	t.Helper()
	b := dsl.NewBuilder()
	R, C := b.Param("R"), b.Param("C")
	I := b.Image("I", expr.Float, R.Affine().AddConst(2), C.Affine().AddConst(2))
	x, y := b.Var("x"), b.Var("y")
	dom := []dsl.Interval{
		dsl.Span(affine.Const(0), R.Affine().AddConst(1)),
		dsl.Span(affine.Const(0), C.Affine().AddConst(1)),
	}
	inner := dsl.InBox([]*dsl.Variable{x, y}, []any{1, 1}, []any{R, C})
	innerB := dsl.InBox([]*dsl.Variable{x, y}, []any{2, 2}, []any{dsl.Sub(R, 1), dsl.Sub(C, 1)})
	Iy := b.Func("Iy", expr.Float, []*dsl.Variable{x, y}, dom)
	Iy.Define(dsl.Case{Cond: inner, E: dsl.Stencil(I, 1.0/12,
		[][]float64{{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}}, [2]any{x, y})})
	Ix := b.Func("Ix", expr.Float, []*dsl.Variable{x, y}, dom)
	Ix.Define(dsl.Case{Cond: inner, E: dsl.Stencil(I, 1.0/12,
		[][]float64{{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}}, [2]any{x, y})})
	box := [][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	mk := func(name string, src *dsl.Function, other *dsl.Function) *dsl.Function {
		f := b.Func(name, expr.Float, []*dsl.Variable{x, y}, dom)
		prod := dsl.Mul(src.At(x, y), other.At(x, y))
		sq := b.Func(name+"_sq", expr.Float, []*dsl.Variable{x, y}, dom)
		sq.Define(dsl.Case{E: prod})
		f.Define(dsl.Case{Cond: innerB, E: dsl.Stencil(sq, 1, box, [2]any{x, y})})
		return f
	}
	Sxx := mk("Sxx", Ix, Ix)
	Syy := mk("Syy", Iy, Iy)
	Sxy := mk("Sxy", Ix, Iy)
	harris := b.Func("harris", expr.Float, []*dsl.Variable{x, y}, dom)
	det := dsl.Sub(dsl.Mul(Sxx.At(x, y), Syy.At(x, y)), dsl.Mul(Sxy.At(x, y), Sxy.At(x, y)))
	trace := dsl.Add(Sxx.At(x, y), Syy.At(x, y))
	harris.Define(dsl.Case{Cond: innerB, E: dsl.Sub(det, dsl.Mul(0.04, dsl.Mul(trace, trace)))})
	g, err := pipeline.Build(b, "harris")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inline.Apply(g, inline.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHarrisGroupsIntoOne(t *testing.T) {
	g := harrisGraph(t)
	gr, err := BuildGroups(g, est, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 1 {
		names := []string{}
		for _, grp := range gr.Groups {
			names = append(names, strings.Join(grp.Members, "+"))
		}
		t.Fatalf("expected 1 group, got %d: %v", len(gr.Groups), names)
	}
	grp := gr.Groups[0]
	if grp.Anchor != "harris" || !grp.Tiled {
		t.Errorf("anchor=%s tiled=%v", grp.Anchor, grp.Tiled)
	}
	if len(grp.Members) != 6 {
		t.Errorf("members = %v", grp.Members)
	}
	// All stages share the anchor grid: scale 1 on both dims.
	for m, ds := range grp.Scales {
		for d, s := range ds {
			if s.AnchorDim != d || !s.Scale.Equal(affine.One) {
				t.Errorf("%s dim %d scale = %+v", m, d, s)
			}
		}
	}
	// Overlap for a 3-deep stencil chain on 32x256 tiles is small but nonzero.
	if grp.OverlapRatio[0] <= 0 || grp.OverlapRatio[0] >= 0.4 {
		t.Errorf("overlap ratio = %v", grp.OverlapRatio)
	}
}

func TestDisableFusion(t *testing.T) {
	g := harrisGraph(t)
	gr, err := BuildGroups(g, est, Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 6 {
		t.Errorf("expected 6 singleton groups, got %d", len(gr.Groups))
	}
	for _, grp := range gr.Groups {
		if grp.Tiled || len(grp.Members) != 1 {
			t.Errorf("group %v should be a singleton", grp.Members)
		}
	}
}

func TestTinyThresholdBlocksStencilFusion(t *testing.T) {
	// A near-zero threshold still admits zero-overlap (point-wise) merges —
	// harris reads Sxx/Syy/Sxy at identity — but blocks every merge across
	// a stencil edge.
	g := harrisGraph(t)
	gr, err := BuildGroups(g, est, Options{OverlapThreshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 3 {
		t.Errorf("expected 3 groups ({S*,harris}, {Ix}, {Iy}), got %v", describeGroups(gr))
	}
	if gr.ByName["Sxx"] != gr.ByName["harris"] {
		t.Error("zero-overlap point-wise merge should still happen")
	}
	if gr.ByName["Ix"] == gr.ByName["Sxx"] {
		t.Error("stencil merge must be blocked by the tiny threshold")
	}
}

func TestNegativeThresholdBlocksAllFusion(t *testing.T) {
	g := harrisGraph(t)
	gr, err := BuildGroups(g, est, Options{OverlapThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 6 {
		t.Errorf("negative threshold must block all merges, got %d groups", len(gr.Groups))
	}
}

// downsampleChain builds out(x) consuming half-resolution d(x) consuming
// full-resolution f(x): tests scaling (Section 3.3 / Figure 6).
func downsampleChain(t *testing.T) *pipeline.Graph {
	t.Helper()
	b := dsl.NewBuilder()
	R := b.Param("R")
	I := b.Image("I", expr.Float, R.Affine().Scale(2).AddConst(2))
	x := b.Var("x")
	full := []dsl.Interval{dsl.Span(affine.Const(0), R.Affine().Scale(2).AddConst(1))}
	half := []dsl.Interval{dsl.Span(affine.Const(0), R.Affine())}
	f := b.Func("f", expr.Float, []*dsl.Variable{x}, full)
	f.Define(dsl.Case{E: I.At(x)})
	d := b.Func("d", expr.Float, []*dsl.Variable{x}, half)
	d.Define(dsl.Case{E: dsl.Add(f.At(dsl.Mul(2, x)), f.At(dsl.Add(dsl.Mul(2, x), 1)))})
	// out upsamples d back to full resolution.
	out := b.Func("out", expr.Float, []*dsl.Variable{x}, full)
	out.Define(dsl.Case{E: d.At(dsl.IDiv(x, 2))})
	g, err := pipeline.Build(b, "out")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScalingThroughSampling(t *testing.T) {
	g := downsampleChain(t)
	members := map[string]bool{"f": true, "d": true, "out": true}
	scales, err := computeScales(g, members, "out")
	if err != nil {
		t.Fatal(err)
	}
	if !scales["out"][0].Scale.Equal(affine.One) {
		t.Errorf("out scale = %v", scales["out"][0])
	}
	if got := scales["d"][0].Scale; !got.Equal(affine.NewRational(1, 2)) {
		t.Errorf("d scale = %v, want 1/2", got)
	}
	if got := scales["f"][0].Scale; !got.Equal(affine.One) {
		t.Errorf("f scale = %v, want 1 (2 · 1/2)", got)
	}
}

func TestInconsistentScalesRejected(t *testing.T) {
	// f(x) = g(x/2) + g(x/4): the paper's example of un-alignable schedules.
	b := dsl.NewBuilder()
	R := b.Param("R")
	I := b.Image("I", expr.Float, R.Affine())
	x := b.Var("x")
	dom := []dsl.Interval{dsl.Span(affine.Const(0), R.Affine().AddConst(-1))}
	gg := b.Func("g", expr.Float, []*dsl.Variable{x}, dom)
	gg.Define(dsl.Case{E: I.At(x)})
	f := b.Func("f", expr.Float, []*dsl.Variable{x},
		[]dsl.Interval{dsl.ConstSpan(0, 99)})
	f.Define(dsl.Case{E: dsl.Add(gg.At(dsl.IDiv(x, 2)), gg.At(dsl.IDiv(x, 4)))})
	g, err := pipeline.Build(b, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := computeScales(g, map[string]bool{"f": true, "g": true}, "f"); err == nil {
		t.Error("expected inconsistent-scale error for g(x/2) + g(x/4)")
	}
}

func TestTransposedAccessRejected(t *testing.T) {
	// f(x,y) = g(x,y) + g(y,x): dims align to two different anchor dims.
	b := dsl.NewBuilder()
	x, y := b.Var("x"), b.Var("y")
	dom := []dsl.Interval{dsl.ConstSpan(0, 99), dsl.ConstSpan(0, 99)}
	gg := b.Func("g", expr.Float, []*dsl.Variable{x, y}, dom)
	gg.Define(dsl.Case{E: dsl.Add(x, y)})
	f := b.Func("f", expr.Float, []*dsl.Variable{x, y}, dom)
	f.Define(dsl.Case{E: dsl.Add(gg.At(x, y), gg.At(y, x))})
	g, err := pipeline.Build(b, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := computeScales(g, map[string]bool{"f": true, "g": true}, "f"); err == nil {
		t.Error("expected alignment conflict for g(x,y) + g(y,x)")
	}
}

func TestAccumulatorNeverGrouped(t *testing.T) {
	b := dsl.NewBuilder()
	R := b.Param("R")
	I := b.Image("I", expr.UChar, R.Affine(), R.Affine())
	x, y, bin := b.Var("x"), b.Var("y"), b.Var("bin")
	dom := []dsl.Interval{
		dsl.Span(affine.Const(0), R.Affine().AddConst(-1)),
		dsl.Span(affine.Const(0), R.Affine().AddConst(-1)),
	}
	hist := b.Accum("hist", expr.Int, []*dsl.Variable{x, y}, dom,
		[]*dsl.Variable{bin}, []dsl.Interval{dsl.ConstSpan(0, 255)})
	hist.Define([]any{I.At(x, y)}, 1, dsl.SumOp)
	cdf := b.Func("cdf", expr.Float, []*dsl.Variable{bin}, []dsl.Interval{dsl.ConstSpan(0, 255)})
	cdf.Define(dsl.Case{E: dsl.Div(hist.At(bin), 100.0)})
	g, err := pipeline.Build(b, "cdf")
	if err != nil {
		t.Fatal(err)
	}
	gr, err := BuildGroups(g, map[string]int64{"R": 512}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gr.ByName["hist"] == gr.ByName["cdf"] {
		t.Error("accumulator must not be fused with its consumer")
	}
}

// TestTilePlanInvariants checks the execution-safety invariants of the
// overlapped tile decomposition on the Harris group:
//  1. owned live-out boxes partition each live-out domain (cover, disjoint);
//  2. for every tile and in-group access, the producer's required region
//     contains everything the consumer's required region reads (soundness).
func TestTilePlanInvariants(t *testing.T) {
	g := harrisGraph(t)
	smallEst := map[string]int64{"R": 150, "C": 200}
	gr, err := BuildGroups(g, smallEst, Options{TileSizes: []int64{32, 64}, MinTileExtent: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 1 {
		t.Fatalf("expected one group, got %d", len(gr.Groups))
	}
	tp, err := NewTilePlan(g, gr.Groups[0], smallEst)
	if err != nil {
		t.Fatal(err)
	}
	checkTilePlanInvariants(t, tp, smallEst)
}

func checkTilePlanInvariants(t *testing.T, tp *TilePlan, params map[string]int64) {
	t.Helper()
	// Per live-out, per dimension: owned intervals must tile the domain.
	type cover struct{ lo, hi int64 }
	covers := make(map[string][][]cover) // member -> dim -> intervals
	idx := make([]int64, len(tp.TileCounts))
	n := tp.NumTiles()
	for flat := int64(0); flat < n; flat++ {
		tp.TileIndex(flat, idx)
		req, err := tp.Required(idx, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Soundness of propagation for in-group reads.
		for _, cname := range tp.Group.Members {
			crq := req[cname]
			if crq == nil || crq.Empty() {
				continue
			}
			for target, accs := range tp.accessCache[cname] {
				if target == cname || !tp.memberSet[target] {
					continue
				}
				for _, aa := range accs {
					var vr affine.Range
					if aa.Acc.Var >= 0 {
						vr = crq[aa.Acc.Var]
					}
					rng, err := aa.Acc.RangeOver(vr, params)
					if err != nil {
						t.Fatal(err)
					}
					need := rng.Intersect(tp.domCache[target][aa.ProducerDim])
					have := req[target][aa.ProducerDim]
					if !have.ContainsRange(need) {
						t.Fatalf("tile %v: %s needs %s of %s dim %d but tile computes %s",
							idx, cname, need, target, aa.ProducerDim, have)
					}
				}
			}
		}
		// Ownership bookkeeping.
		for _, lo := range tp.LiveOuts {
			owned := tp.OwnedBox(lo, idx)
			if owned.Empty() {
				continue
			}
			req2 := req[lo]
			if !req2.ContainsBox(owned) {
				t.Fatalf("tile %v: owned box %v of %s not computed (%v)", idx, owned, lo, req2)
			}
			if covers[lo] == nil {
				covers[lo] = make([][]cover, len(owned))
			}
			for d, r := range owned {
				covers[lo][d] = append(covers[lo][d], cover{r.Lo, r.Hi})
			}
		}
	}
	// Per dim: dedup and check the intervals tile the domain contiguously.
	for lo, dims := range covers {
		dom := tp.domCache[lo]
		for d, ivs := range dims {
			uniq := map[cover]bool{}
			for _, iv := range ivs {
				uniq[iv] = true
			}
			list := make([]cover, 0, len(uniq))
			for iv := range uniq {
				list = append(list, iv)
			}
			sort.Slice(list, func(i, j int) bool { return list[i].lo < list[j].lo })
			if list[0].lo != dom[d].Lo || list[len(list)-1].hi != dom[d].Hi {
				t.Fatalf("%s dim %d: owned intervals %v do not span domain %v", lo, d, list, dom[d])
			}
			for i := 1; i < len(list); i++ {
				if list[i].lo != list[i-1].hi+1 {
					t.Fatalf("%s dim %d: gap/overlap between %v and %v", lo, d, list[i-1], list[i])
				}
			}
		}
	}
}

// TestTilePlanSamplingChain checks invariants on a group with non-unit
// scales (down/up-sampling).
func TestTilePlanSamplingChain(t *testing.T) {
	g := downsampleChain(t)
	smallEst := map[string]int64{"R": 64} // full res 130, half res 65
	gr, err := BuildGroups(g, smallEst, Options{TileSizes: []int64{16}, MinTileExtent: 8, MinSize: 16, OverlapThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	grp := gr.ByName["out"]
	if len(grp.Members) != 3 {
		t.Fatalf("expected full fusion, groups: %v", describeGroups(gr))
	}
	tp, err := NewTilePlan(g, grp, smallEst)
	if err != nil {
		t.Fatal(err)
	}
	checkTilePlanInvariants(t, tp, smallEst)
}

func describeGroups(gr *Grouping) []string {
	var out []string
	for _, grp := range gr.Groups {
		out = append(out, strings.Join(grp.Members, "+"))
	}
	return out
}

func TestEffectiveTileSizes(t *testing.T) {
	opts := DefaultOptions()
	// 3-channel x 1000 x 2000 image: channel dim untiled.
	box := affine.Box{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 999}, {Lo: 0, Hi: 1999}}
	ts := effectiveTileSizes(box, opts)
	if ts[0] != 0 || ts[1] != 32 || ts[2] != 256 {
		t.Errorf("tile sizes = %v", ts)
	}
	// Tile size larger than extent: untiled.
	small := affine.Box{{Lo: 0, Hi: 30}}
	if got := effectiveTileSizes(small, opts); got[0] != 0 {
		t.Errorf("small extent should be untiled, got %v", got)
	}
}
