package schedule

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/pipeline"
)

// This file is the auto-scheduler's search (Options.Auto): a deterministic
// beam search over grouping candidates × per-group tile sizes, scored by
// the analytical model in cost.go, with branch-and-bound pruning on a
// sound lower bound. It replaces Algorithm 1's single OverlapThreshold
// cut: instead of merging whenever an interior tile's overlap fraction is
// below one knob, every candidate merge is priced (memory traffic saved vs
// halo recompute and footprint added, parallelism lost) and the cheapest
// partition wins. Inlining decisions ride on top in internal/core, which
// compares the searched model cost of the inlined and uninlined graphs.

// AutoOptions tunes the cost-model search. The zero value means "use the
// defaults" field by field.
type AutoOptions struct {
	// BeamWidth is the number of partition states kept per search round.
	BeamWidth int
	// TileCandidates are the per-group tile-size vectors the search
	// chooses between (assigned to anchor dimensions like
	// Options.TileSizes: outermost first, last entry repeating). The
	// deterministic argmin under the model picks one per merged group.
	TileCandidates [][]int64
	// Weights are the model coefficients; nil uses DefaultCostWeights
	// (the fitted values baked in from benchmark history).
	Weights *CostWeights
	// FleetWidth is the worker count the parallelism term assumes;
	// 0 uses runtime.GOMAXPROCS (the engine fleet's own default).
	FleetWidth int
	// ExactTileCap bounds exact per-tile cost enumeration; groups with
	// more tiles extrapolate from the interior tile (cost.go).
	ExactTileCap int64
	// CacheBudgetBytes is the per-tile scratch budget before the
	// footprint term starts charging (default 1 MiB — a per-core L2).
	CacheBudgetBytes int64
	// RowOverheadPoints is the fixed dispatch cost of one row segment,
	// expressed in point-equivalents and folded into the Compute term.
	// Calibrated against the measured square-vs-wide tile gap on the
	// Table-2 stencil apps (~25 points per row).
	RowOverheadPoints float64
	// MaxStates caps the number of cost-model evaluations per search; the
	// search stops expanding (keeping the best partition found) beyond
	// it. A backstop for adversarial difftest pipelines, far above what
	// the Table-2 apps need.
	MaxStates int
}

// DefaultAutoOptions returns the search defaults.
func DefaultAutoOptions() AutoOptions {
	return AutoOptions{
		BeamWidth: 4,
		TileCandidates: [][]int64{
			{32, 256}, {64, 64}, {128, 128}, {32, 32}, {16, 16}, {8, 8},
		},
		FleetWidth:        runtime.GOMAXPROCS(0),
		ExactTileCap:      4096,
		CacheBudgetBytes:  1 << 20,
		RowOverheadPoints: 24,
		MaxStates:         512,
	}
}

func (ao AutoOptions) withDefaults() AutoOptions {
	d := DefaultAutoOptions()
	if ao.BeamWidth <= 0 {
		ao.BeamWidth = d.BeamWidth
	}
	if len(ao.TileCandidates) == 0 {
		ao.TileCandidates = d.TileCandidates
	}
	if ao.FleetWidth <= 0 {
		ao.FleetWidth = d.FleetWidth
	}
	if ao.ExactTileCap <= 0 {
		ao.ExactTileCap = d.ExactTileCap
	}
	if ao.CacheBudgetBytes <= 0 {
		ao.CacheBudgetBytes = d.CacheBudgetBytes
	}
	if ao.RowOverheadPoints <= 0 {
		ao.RowOverheadPoints = d.RowOverheadPoints
	}
	if ao.MaxStates <= 0 {
		ao.MaxStates = d.MaxStates
	}
	return ao
}

// weights resolves the model coefficients.
func (ao AutoOptions) weights() CostWeights {
	if ao.Weights != nil {
		return *ao.Weights
	}
	return DefaultCostWeights()
}

// Digest returns a short stable hash of everything that can change the
// search's outcome — knobs and resolved weights. The service includes it
// in compiled-program cache keys: the search is deterministic, so equal
// digests (plus app/params) imply equal schedules.
func (ao AutoOptions) Digest() string {
	ao = ao.withDefaults()
	w := ao.weights()
	h := sha256.New()
	fmt.Fprintf(h, "beam=%d;fleet=%d;cap=%d;budget=%d;row=%g;max=%d;",
		ao.BeamWidth, ao.FleetWidth, ao.ExactTileCap, ao.CacheBudgetBytes, ao.RowOverheadPoints, ao.MaxStates)
	for _, tc := range ao.TileCandidates {
		fmt.Fprintf(h, "t=%v;", tc)
	}
	fmt.Fprintf(h, "w=%g,%g,%g,%g,%g", w.Compute, w.Recompute, w.Traffic, w.Parallel, w.Footprint)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// SearchStats counts the search's effort.
type SearchStats struct {
	// States is the number of cost-model evaluations performed.
	States int
	// Expanded is the number of partition states whose merges were tried.
	Expanded int
	// Pruned is the number of states cut by the branch-and-bound lower
	// bound without expansion.
	Pruned int
}

// searchState is one partition of the stages into groups. Group objects
// are immutable during the search and shared between states.
type searchState struct {
	groups []*Group
	byName map[string]*Group
	total  float64 // weighted model cost under the searcher's weights
	sig    string  // canonical partition+tiling signature (dedup key)
}

// lowerBound is a sound optimistic bound on the cost of any state
// reachable from s by further merges: merging never decreases the
// compute, recompute or footprint terms, can delete at most each group's
// ReducibleTraffic from the traffic term, and can at best zero the
// parallel-idle term. Proof sketch: a merged group still evaluates at
// least every point each constituent evaluated (halos only grow), still
// writes every pipeline live-out and still reads every input image.
func (s *searchState) lowerBound(w CostWeights) float64 {
	lb := s.total
	for _, grp := range s.groups {
		if grp.Cost != nil {
			lb -= w.Traffic*grp.Cost.ReducibleTraffic + w.Parallel*grp.Cost.ParallelIdle
		}
	}
	return lb
}

// searcher holds the per-search context.
type searcher struct {
	g     *pipeline.Graph
	est   map[string]int64
	opts  Options
	ao    AutoOptions
	w     CostWeights
	stats SearchStats
	// nextID hands out group IDs above every seed ID so IDs stay unique
	// within any state.
	nextID int
}

// SearchGroups is the Options.Auto entry point: it replaces Algorithm 1's
// greedy threshold merge with the cost-model beam search. The result is a
// valid Grouping exactly like BuildGroups produces, with Searched,
// ModelCost, Search and per-group Cost populated.
func SearchGroups(g *pipeline.Graph, est map[string]int64, opts Options) (*Grouping, error) {
	opts = opts.withDefaults()
	var ao AutoOptions
	if opts.AutoOpts != nil {
		ao = *opts.AutoOpts
	}
	ao = ao.withDefaults()
	s := &searcher{g: g, est: est, opts: opts, ao: ao, w: ao.weights(), nextID: len(g.Order) + 1}

	seeds, err := s.seedStates()
	if err != nil {
		return nil, err
	}
	best := seeds[0]
	for _, st := range seeds {
		if st.total < best.total {
			best = st
		}
	}

	frontier := truncateFrontier(seeds, ao.BeamWidth)
	// Each round merges one more pair somewhere; a partition of N stages
	// supports at most N-1 merges.
	for round := 0; round < len(g.Order) && len(frontier) > 0; round++ {
		var next []*searchState
		for _, st := range frontier {
			if st.lowerBound(s.w) >= best.total {
				s.stats.Pruned++
				continue
			}
			if s.stats.States >= ao.MaxStates {
				break
			}
			s.stats.Expanded++
			exp, err := s.expand(st)
			if err != nil {
				return nil, err
			}
			next = append(next, exp...)
		}
		if len(next) == 0 {
			break
		}
		for _, st := range next {
			if st.total < best.total {
				best = st
			}
		}
		frontier = truncateFrontier(next, ao.BeamWidth)
	}

	gr := &Grouping{
		Groups:    best.groups,
		ByName:    make(map[string]*Group, len(g.Order)),
		Graph:     g,
		Est:       est,
		Searched:  true,
		ModelCost: best.total,
		Search:    &s.stats,
	}
	for _, grp := range gr.Groups {
		for _, m := range grp.Members {
			gr.ByName[m] = grp
		}
	}
	if err := orderGroups(gr); err != nil {
		return nil, err
	}
	return gr, nil
}

// seedStates builds the search's starting partitions: the all-singleton
// partition, the greedy Algorithm 1 partition (so the searched schedule is
// never worse than the default in model space), and the greedy partition
// with every merged group's tiles re-chosen by the model.
func (s *searcher) seedStates() ([]*searchState, error) {
	// All singletons.
	singles := make([]*Group, 0, len(s.g.Order))
	for i, name := range s.g.Order {
		grp, err := s.singletonGroup(name, i)
		if err != nil {
			return nil, err
		}
		singles = append(singles, grp)
	}
	seeds := []*searchState{s.newState(singles)}

	// Greedy Algorithm 1 result under the same non-auto options.
	gopts := s.opts
	gopts.Auto = false
	gopts.AutoOpts = nil
	greedy, err := BuildGroups(s.g, s.est, gopts)
	if err != nil {
		// The greedy heuristic can fail on pipelines the search handles
		// (or vice versa); it is only a seed, not a requirement.
		return seeds, nil
	}
	var asIs, retiled []*Group
	retileOK := true
	for _, grp := range greedy.Groups {
		c, cerr := EvalGroupCost(s.g, grp, s.est, s.ao)
		if cerr != nil {
			asIs = nil
			retileOK = false
			break
		}
		s.stats.States++
		gc := c
		grp.Cost = &gc
		asIs = append(asIs, grp)
		if len(grp.Members) > 1 {
			memberSet := make(map[string]bool, len(grp.Members))
			for _, m := range grp.Members {
				memberSet[m] = true
			}
			rt := s.bestMergedGroup(memberSet, grp.Anchor)
			if rt == nil {
				retileOK = false
				continue
			}
			retiled = append(retiled, rt)
		} else {
			retiled = append(retiled, grp)
		}
	}
	if asIs != nil {
		seeds = append(seeds, s.newState(asIs))
		if retileOK {
			seeds = append(seeds, s.newState(retiled))
		}
	}
	return dedupStates(seeds), nil
}

// expand generates every legal single-merge successor of a state: each
// group with exactly one child group, both sides mergeable, merged with
// that child under the model's best tile choice.
func (s *searcher) expand(st *searchState) ([]*searchState, error) {
	// Deterministic candidate order: groups sorted by anchor.
	groups := append([]*Group(nil), st.groups...)
	sort.Slice(groups, func(i, j int) bool { return groups[i].Anchor < groups[j].Anchor })
	var out []*searchState
	for _, grp := range groups {
		if s.stats.States >= s.ao.MaxStates {
			break
		}
		children := childGroups(s.g, st.byName, grp)
		if len(children) != 1 {
			continue
		}
		child := children[0]
		if !mergeableGroup(s.g, grp, s.est, s.opts, true) || !mergeableGroup(s.g, child, s.est, s.opts, false) {
			continue
		}
		memberSet := make(map[string]bool, len(grp.Members)+len(child.Members))
		for _, m := range grp.Members {
			memberSet[m] = true
		}
		for _, m := range child.Members {
			memberSet[m] = true
		}
		merged := s.bestMergedGroup(memberSet, child.Anchor)
		if merged == nil {
			continue // no legal aligned+tiled fusion of this pair
		}
		ng := make([]*Group, 0, len(st.groups)-1)
		for _, o := range st.groups {
			if o.ID != grp.ID && o.ID != child.ID {
				ng = append(ng, o)
			}
		}
		ng = append(ng, merged)
		out = append(out, s.newState(ng))
	}
	return out, nil
}

// bestMergedGroup aligns/scales the member set against the anchor and
// picks the model-cheapest legal tile-size candidate. Returns nil when no
// legal fused+tiled schedule of the member set exists (alignment failure,
// unaligned dimension too wide, nothing to tile). Deterministic: strict
// argmin, earlier candidate wins ties.
func (s *searcher) bestMergedGroup(memberSet map[string]bool, anchor string) *Group {
	scales, err := computeScales(s.g, memberSet, anchor)
	if err != nil {
		return nil
	}
	members := sortedMembers(s.g, memberSet)
	anchorBox, err := domainAt(s.g.Stages[anchor], s.est)
	if err != nil {
		return nil
	}
	var best *Group
	var bestCost float64
	for _, cand := range s.ao.TileCandidates {
		if s.stats.States >= s.ao.MaxStates && best != nil {
			break
		}
		topts := s.opts
		topts.TileSizes = cand
		ts := effectiveTileSizes(anchorBox, topts)
		tiled := false
		for _, t := range ts {
			if t > 0 {
				tiled = true
			}
		}
		if !tiled {
			continue
		}
		trial := &Group{ID: s.nextID, Members: members, Anchor: anchor, Scales: scales, Tiled: true, TileSizes: ts}
		// estimateOverlap doubles as the legality check Algorithm 1 relies
		// on: it rejects over-wide unaligned dimensions and degenerate
		// (NaN/Inf) overlaps. Its threshold is not applied here — the
		// model prices the overlap instead.
		ratios, rerr := estimateOverlap(s.g, trial, s.est, s.opts)
		if rerr != nil {
			continue
		}
		trial.OverlapRatio = ratios
		c, cerr := EvalGroupCost(s.g, trial, s.est, s.ao)
		if cerr != nil {
			continue
		}
		s.stats.States++
		trial.Cost = &c
		if t := s.w.Total(c); best == nil || t < bestCost {
			best, bestCost = trial, t
		}
	}
	if best != nil {
		best.ID = s.nextID
		s.nextID++
	}
	return best
}

// singletonGroup builds the untiled one-stage group finalizeGroups would
// produce, with its cost evaluated.
func (s *searcher) singletonGroup(name string, id int) (*Group, error) {
	st := s.g.Stages[name]
	ds := make([]DimScale, st.Decl.NumDims())
	for d := range ds {
		ds[d] = DimScale{AnchorDim: d, Scale: oneRat()}
	}
	grp := &Group{
		ID:        id,
		Members:   []string{name},
		Anchor:    name,
		Scales:    map[string][]DimScale{name: ds},
		TileSizes: make([]int64, st.Decl.NumDims()),
	}
	c, err := EvalGroupCost(s.g, grp, s.est, s.ao)
	if err != nil {
		return nil, fmt.Errorf("schedule: cost of stage %s: %w", name, err)
	}
	s.stats.States++
	grp.Cost = &c
	return grp, nil
}

// newState assembles a state from its groups: total cost, name index and
// canonical signature.
func (s *searcher) newState(groups []*Group) *searchState {
	st := &searchState{groups: groups, byName: make(map[string]*Group, len(s.g.Order))}
	parts := make([]string, 0, len(groups))
	for _, grp := range groups {
		for _, m := range grp.Members {
			st.byName[m] = grp
		}
		if grp.Cost != nil {
			st.total += s.w.Total(*grp.Cost)
		}
		parts = append(parts, fmt.Sprintf("%s[%s|%v]", grp.Anchor, strings.Join(grp.Members, ","), grp.TileSizes))
	}
	sort.Strings(parts)
	st.sig = strings.Join(parts, ";")
	return st
}

// truncateFrontier dedups by signature, sorts by (cost, signature) and
// keeps the beam's width.
func truncateFrontier(states []*searchState, width int) []*searchState {
	states = dedupStates(states)
	sort.Slice(states, func(i, j int) bool {
		if states[i].total != states[j].total {
			return states[i].total < states[j].total
		}
		return states[i].sig < states[j].sig
	})
	if len(states) > width {
		states = states[:width]
	}
	return states
}

func dedupStates(states []*searchState) []*searchState {
	seen := make(map[string]bool, len(states))
	out := states[:0]
	for _, st := range states {
		if seen[st.sig] {
			continue
		}
		seen[st.sig] = true
		out = append(out, st)
	}
	return out
}
