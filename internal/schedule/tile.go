package schedule

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/pipeline"
)

// TilePlan is the concrete overlapped-tile decomposition of one group for a
// given parameter binding: the anchor's domain is cut into tiles; for each
// tile, the regions of every member stage needed to compute the tile's
// live-out values are obtained by backward interval propagation through the
// in-group accesses (the tight tile shape construction of Section 3.4 /
// Figure 6).
type TilePlan struct {
	Group     *Group
	Graph     *pipeline.Graph
	Params    map[string]int64
	AnchorBox affine.Box
	// TileSizes per anchor dim; 0 means the dimension is untiled (one tile
	// spans the whole extent).
	TileSizes []int64
	// TileCounts per anchor dim.
	TileCounts []int64
	// LiveOuts are members whose values are consumed outside the group (or
	// are pipeline outputs); they are written to full buffers. Includes the
	// anchor.
	LiveOuts []string

	accessCache map[string]map[string][]argAccess
	domCache    map[string]affine.Box
	memberSet   map[string]bool
	// extDoms holds the concrete domains of every out-of-group producer any
	// member reads (earlier stages and input images), precomputed so
	// dirty-rectangle runs can derive each tile's external read regions
	// without locking or allocating.
	extDoms map[string]affine.Box
}

// NewTilePlan builds the tile decomposition of a group under the given
// parameter binding.
func NewTilePlan(g *pipeline.Graph, grp *Group, params map[string]int64) (*TilePlan, error) {
	anchorBox, err := domainAt(g.Stages[grp.Anchor], params)
	if err != nil {
		return nil, err
	}
	tp := &TilePlan{
		Group:       grp,
		Graph:       g,
		Params:      params,
		AnchorBox:   anchorBox,
		TileSizes:   make([]int64, len(anchorBox)),
		TileCounts:  make([]int64, len(anchorBox)),
		accessCache: make(map[string]map[string][]argAccess),
		domCache:    make(map[string]affine.Box),
	}
	if grp.Tiled {
		copy(tp.TileSizes, grp.TileSizes)
	}
	for d, r := range anchorBox {
		ts := tp.TileSizes[d]
		if ts <= 0 || ts >= r.Size() {
			tp.TileSizes[d] = 0
			tp.TileCounts[d] = 1
		} else {
			tp.TileCounts[d] = affine.CeilDiv(r.Size(), ts)
		}
	}
	inGroup := make(map[string]bool, len(grp.Members))
	for _, m := range grp.Members {
		inGroup[m] = true
	}
	tp.memberSet = inGroup
	for _, m := range grp.Members {
		st := g.Stages[m]
		live := st.LiveOut
		for _, c := range st.Consumers {
			if !inGroup[c] {
				live = true
			}
		}
		if m == grp.Anchor {
			live = true
		}
		if live {
			tp.LiveOuts = append(tp.LiveOuts, m)
		}
		tp.accessCache[m] = stageAccessMap(st)
		dom, err := domainAt(st, params)
		if err != nil {
			return nil, err
		}
		tp.domCache[m] = dom
	}
	tp.extDoms = make(map[string]affine.Box)
	for _, m := range grp.Members {
		for target := range tp.accessCache[m] {
			if inGroup[target] || tp.extDoms[target] != nil {
				continue
			}
			var dom affine.Box
			var err error
			if st, ok := g.Stages[target]; ok {
				dom, err = domainAt(st, params)
			} else if im, ok := g.Images[target]; ok {
				dom, err = im.Domain().Eval(params)
			} else {
				continue
			}
			if err != nil {
				return nil, err
			}
			tp.extDoms[target] = dom
		}
	}
	return tp, nil
}

// NumTiles returns the total number of tiles.
func (tp *TilePlan) NumTiles() int64 {
	n := int64(1)
	for _, c := range tp.TileCounts {
		n *= c
	}
	return n
}

// TileIndex converts a flat tile number into a per-dimension tile index.
func (tp *TilePlan) TileIndex(flat int64, idx []int64) []int64 {
	if idx == nil {
		idx = make([]int64, len(tp.TileCounts))
	}
	for d := len(tp.TileCounts) - 1; d >= 0; d-- {
		idx[d] = flat % tp.TileCounts[d]
		flat /= tp.TileCounts[d]
	}
	return idx
}

// TileBox returns the anchor-domain box of the tile at the given index
// (clamped to the anchor domain).
func (tp *TilePlan) TileBox(idx []int64) affine.Box {
	b := make(affine.Box, len(tp.AnchorBox))
	for d, r := range tp.AnchorBox {
		if tp.TileSizes[d] == 0 {
			b[d] = r
			continue
		}
		lo := r.Lo + idx[d]*tp.TileSizes[d]
		hi := lo + tp.TileSizes[d] - 1
		if hi > r.Hi {
			hi = r.Hi
		}
		b[d] = affine.Range{Lo: lo, Hi: hi}
	}
	return b
}

// MemberDomain returns a member's concrete domain.
func (tp *TilePlan) MemberDomain(m string) affine.Box { return tp.domCache[m] }

// MemberAccess is one in-group access of a member (consumer side view).
type MemberAccess struct {
	Target      string // producer stage (an in-group member)
	ProducerDim int
	Acc         affine.Access
	OK          bool // quasi-affine form available
}

// InGroupAccesses lists a member's accesses to other group members (used by
// alternative tiling strategies such as split tiling).
func (tp *TilePlan) InGroupAccesses(m string) []MemberAccess {
	var out []MemberAccess
	for target, accs := range tp.accessCache[m] {
		if target == m || !tp.memberSet[target] {
			continue
		}
		for _, aa := range accs {
			out = append(out, MemberAccess{Target: target, ProducerDim: aa.ProducerDim, Acc: aa.Acc, OK: aa.OK})
		}
	}
	return out
}

// OwnedBox returns the sub-box of live-out member m that the tile at idx is
// responsible for writing. Tiles own disjoint boxes whose union covers the
// member's domain exactly, so parallel tiles never write the same live-out
// element twice (overlap regions are recomputed into scratchpads only).
func (tp *TilePlan) OwnedBox(m string, idx []int64) affine.Box {
	dom := tp.domCache[m]
	out := make(affine.Box, len(dom))
	tp.ownedBoxInto(out, m, idx)
	return out
}

// OwnedBoxInto computes OwnedBox into dst (len(dst) must equal the member's
// rank) without allocating — used by the engine's metrics path to measure
// recomputation without perturbing the run it is measuring.
func (tp *TilePlan) OwnedBoxInto(dst affine.Box, m string, idx []int64) {
	tp.ownedBoxInto(dst, m, idx)
}

// ownedBoxInto computes OwnedBox into dst (len(dst) must equal the member's
// rank) without allocating — the steady-state path for repeated Required
// calls.
func (tp *TilePlan) ownedBoxInto(out affine.Box, m string, idx []int64) {
	if m == tp.Group.Anchor {
		for d, r := range tp.AnchorBox {
			if tp.TileSizes[d] == 0 {
				out[d] = r
				continue
			}
			lo := r.Lo + idx[d]*tp.TileSizes[d]
			hi := lo + tp.TileSizes[d] - 1
			if hi > r.Hi {
				hi = r.Hi
			}
			out[d] = affine.Range{Lo: lo, Hi: hi}
		}
		return
	}
	scales := tp.Group.Scales[m]
	dom := tp.domCache[m]
	for d, r := range dom {
		ds := scales[d]
		if ds.AnchorDim < 0 || tp.TileSizes[ds.AnchorDim] == 0 {
			// Unaligned or untiled anchor dimension: the single tile along
			// it owns the full extent.
			out[d] = r
			continue
		}
		a := ds.AnchorDim
		t := idx[a]
		lo := r.Lo
		if t > 0 {
			lo = r.Lo + ds.Scale.ScaleFloor(t*tp.TileSizes[a])
		}
		hi := r.Hi
		if t < tp.TileCounts[a]-1 {
			hi = r.Lo + ds.Scale.ScaleFloor((t+1)*tp.TileSizes[a]) - 1
		}
		out[d] = affine.Range{Lo: lo, Hi: hi}
	}
	for d := range out {
		out[d] = out[d].Intersect(dom[d])
	}
}

// Required computes, for the tile at idx, the region of every member that
// must be evaluated: the tile's owned live-out boxes plus everything the
// in-group consumers transitively need (the overlapped tile of Figure 6).
// Results are clipped to the member domains. The returned map is freshly
// allocated unless dst is provided.
func (tp *TilePlan) Required(idx []int64, dst map[string]affine.Box) (map[string]affine.Box, error) {
	req := dst
	if req == nil {
		req = make(map[string]affine.Box, len(tp.Group.Members))
	}
	members := tp.Group.Members
	// Boxes in req are reused in place across calls (steady-state Required
	// allocates nothing): a member not required by this tile holds an
	// all-empty box rather than nil, which callers treat identically.
	for _, m := range members {
		dom := tp.domCache[m]
		b := req[m]
		if len(b) != len(dom) {
			b = make(affine.Box, len(dom))
			req[m] = b
		}
		for d := range b {
			b[d] = affine.Range{Lo: 0, Hi: -1} // empty
		}
	}
	// Seed with owned live-out regions.
	for _, lo := range tp.LiveOuts {
		tp.ownedBoxInto(req[lo], lo, idx)
	}
	// Backward propagation: consumers before producers.
	for i := len(members) - 1; i >= 0; i-- {
		cname := members[i]
		crq := req[cname]
		if crq.Empty() {
			continue
		}
		for target, accs := range tp.accessCache[cname] {
			if target == cname || !tp.memberSet[target] {
				continue
			}
			pdom := tp.domCache[target]
			prq := req[target]
			for _, aa := range accs {
				if !aa.OK {
					return nil, fmt.Errorf("schedule: non-affine in-group access %s -> %s", cname, target)
				}
				var varRange affine.Range
				if aa.Acc.Var >= 0 {
					varRange = crq[aa.Acc.Var]
				}
				rng, err := aa.Acc.RangeOver(varRange, tp.Params)
				if err != nil {
					return nil, err
				}
				prq[aa.ProducerDim] = prq[aa.ProducerDim].Union(rng.Intersect(pdom[aa.ProducerDim]))
			}
		}
	}
	// Clip to domains (in place).
	for _, m := range members {
		b := req[m]
		dom := tp.domCache[m]
		for d := range b {
			b[d] = b[d].Intersect(dom[d])
		}
	}
	return req, nil
}

// ExternalReads computes, given a tile's member required regions req (as
// returned by Required), the region of every out-of-group producer —
// earlier groups' stages and input images — the tile reads. Like Required,
// boxes in dst are reused in place across calls: a target the tile does not
// read holds an all-empty box. A non-affine external access widens to the
// producer's whole domain, a sound over-approximation — the dirty-rectangle
// engine then recomputes the tile whenever that producer changed anywhere.
func (tp *TilePlan) ExternalReads(req map[string]affine.Box, dst map[string]affine.Box) (map[string]affine.Box, error) {
	out := dst
	if out == nil {
		out = make(map[string]affine.Box, len(tp.extDoms))
	}
	for target, dom := range tp.extDoms {
		b := out[target]
		if len(b) != len(dom) {
			b = make(affine.Box, len(dom))
			out[target] = b
		}
		for d := range b {
			b[d] = affine.Range{Lo: 0, Hi: -1} // empty
		}
	}
	for _, cname := range tp.Group.Members {
		crq := req[cname]
		if crq.Empty() {
			continue
		}
		for target, accs := range tp.accessCache[cname] {
			edom, external := tp.extDoms[target]
			if !external {
				continue
			}
			erq := out[target]
			for _, aa := range accs {
				if !aa.OK || aa.Acc.Var >= len(crq) {
					// Non-affine access, or one indexed by a variable outside
					// the member's output domain (a reduction variable):
					// widen to the producer's whole extent.
					erq[aa.ProducerDim] = erq[aa.ProducerDim].Union(edom[aa.ProducerDim])
					continue
				}
				var varRange affine.Range
				if aa.Acc.Var >= 0 {
					varRange = crq[aa.Acc.Var]
				}
				rng, err := aa.Acc.RangeOver(varRange, tp.Params)
				if err != nil {
					return nil, err
				}
				erq[aa.ProducerDim] = erq[aa.ProducerDim].Union(rng.Intersect(edom[aa.ProducerDim]))
			}
		}
	}
	return out, nil
}
