package service

// Auto-scheduling through the serving layer: cache-key separation between
// searched and hand schedules, the request-level override, and the
// auto/tiles exclusivity rule. Run race-checked by `make auto-race`.

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
)

// TestAutoCacheKeyDistinct pins the cache-key rule: the same request
// compiled with and without the auto-scheduler must never share a compiled
// program, and the auto key must include the search-options digest (so a
// knob change invalidates cached schedules).
func TestAutoCacheKeyDistinct(t *testing.T) {
	req := &RunRequest{Spec: testSpec()}
	if err := req.validate(); err != nil {
		t.Fatal(err)
	}
	eo := engine.ExecOptions{Threads: 1}
	hand := req.cacheKey(eo, nil, false)
	auto := req.cacheKey(eo, nil, true)
	if hand == auto {
		t.Fatal("auto and hand requests share a cache key")
	}
	if req.cacheKey(eo, nil, true) != auto {
		t.Fatal("auto cache key not stable")
	}
}

// TestAutoServeEndToEnd drives a server whose default is auto-scheduling:
// the response must carry auto_scheduled and a schedule digest, a request
// pinning auto=false must miss the auto program's cache entry, and
// explicit tiles must reject the auto override with a 400.
func TestAutoServeEndToEnd(t *testing.T) {
	svc := New(Config{AutoSchedule: true})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	code, _, m := post(t, srv.URL, &RunRequest{Spec: testSpec()})
	if code != 200 {
		t.Fatalf("auto run = %d %v", code, m["error"])
	}
	if m["auto_scheduled"] != true {
		t.Fatalf("auto_scheduled = %v, want true", m["auto_scheduled"])
	}
	if d, _ := m["schedule_digest"].(string); d == "" {
		t.Fatal("missing schedule_digest on an auto-scheduled response")
	}

	// Same spec with auto pinned off: a different program (cache cold),
	// and no auto_scheduled marker.
	off := false
	code, _, m = post(t, srv.URL, &RunRequest{Spec: testSpec(), Auto: &off})
	if code != 200 {
		t.Fatalf("hand run = %d %v", code, m["error"])
	}
	if m["cached"] != false {
		t.Fatal("hand request hit the auto-scheduled cache entry")
	}
	if m["auto_scheduled"] == true {
		t.Fatal("hand-scheduled response claims auto_scheduled")
	}

	// Explicit tiles pin a hand schedule; combining them with auto=true
	// is a contradiction the API rejects.
	on := true
	code, _, m = post(t, srv.URL, &RunRequest{Spec: testSpec(), Tiles: []int64{32}, Auto: &on})
	if code != 400 {
		t.Fatalf("auto+tiles = %d %v, want 400", code, m["error"])
	}
}
