package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/difftest"
	"repro/internal/dsl"
	"repro/internal/engine"
)

// compiled is everything a cache entry keeps per program: the bound
// engine.Program plus whatever is needed to synthesize inputs for it
// later (the app hooks, or the spec for reference re-execution).
type compiled struct {
	label         string
	prog          *engine.Program
	app           *apps.App    // app requests only
	builder       *dsl.Builder // app requests only (app.Inputs needs it)
	spec          *difftest.PipelineSpec
	params        map[string]int64
	compileMillis float64
}

// entry is one cached program. The ready channel implements singleflight:
// the first request for a key inserts the entry and compiles; concurrent
// requests for the same key wait on ready instead of compiling again.
//
// refs/lastUse/evicted are guarded by the owning cache's mutex. refs
// counts requests currently using the entry; an evicted entry's program
// is closed when the last reference drops.
type entry struct {
	key   string
	ready chan struct{}
	res   compiled
	err   error

	refs    int
	lastUse int64
	evicted bool

	// requests counts requests served by this entry (metrics only).
	requests int64

	// Synthetic inputs are memoized per seed so warm requests skip buffer
	// allocation and filling entirely (bounded; see inputsFor).
	imu    sync.Mutex
	inputs map[int64]map[string]*engine.Buffer

	// The reference interpreter's outputs for Verify requests, computed at
	// most once per entry (the interpreter is orders of magnitude slower
	// than the engine).
	refOnce sync.Once
	ref     map[string]*engine.Buffer
	refErr  error
}

// reference lazily runs the tree-walking interpreter on the entry's spec
// (unperturbed, at the spec's own seed) and memoizes the outputs.
func (e *entry) reference() (map[string]*engine.Buffer, error) {
	e.refOnce.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.refErr = fmt.Errorf("reference build panicked: %v", r)
			}
		}()
		if e.res.spec == nil {
			e.refErr = fmt.Errorf("no spec to verify against")
			return
		}
		rb, err := e.res.spec.Build(false)
		if err != nil {
			e.refErr = err
			return
		}
		e.ref, e.refErr = engine.Reference(rb.Graph, rb.Params, rb.Inputs)
	})
	return e.ref, e.refErr
}

// programCache is the compiled-program cache: keyed lookups, singleflight
// compilation, LRU eviction above a capacity limit, and refcounted close
// so eviction never tears a program out from under an in-flight request.
type programCache struct {
	mu       sync.Mutex
	capacity int
	seq      int64
	entries  map[string]*entry

	hits, misses, compileErrors, evictions int64
}

func newProgramCache(capacity int) *programCache {
	return &programCache{capacity: capacity, entries: make(map[string]*entry)}
}

// acquire returns the entry for key, compiling it via build if absent.
// Exactly one caller runs build per key at a time; concurrent callers wait
// on the result (bounded by ctx). cached reports whether the program
// existed before this call. The caller must release(e) when done with a
// successfully acquired entry. Failed builds are not cached: the entry is
// removed so a later request retries, but every waiter already attached
// gets the same error.
func (c *programCache) acquire(ctx context.Context, key string, build func() (compiled, error)) (e *entry, cached bool, err error) {
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		e.refs++
		c.touch(e)
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			c.release(e)
			return nil, false, ctx.Err()
		}
		if e.err != nil {
			c.release(e)
			return nil, false, e.err
		}
		e.countRequest()
		return e, true, nil
	}
	e = &entry{key: key, ready: make(chan struct{}), refs: 1}
	c.touch(e)
	c.misses++
	c.entries[key] = e
	evict := c.evictLocked()
	c.mu.Unlock()
	closeEntries(evict)

	e.res, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		c.compileErrors++
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		e.evicted = true
		c.mu.Unlock()
		c.release(e)
		return nil, false, e.err
	}
	e.countRequest()
	return e, false, nil
}

func (e *entry) countRequest() {
	// Guarded by imu rather than the cache mutex: it is touched only here
	// and in stats(), never on the eviction path.
	e.imu.Lock()
	e.requests++
	e.imu.Unlock()
}

// release drops one reference; the last release of an evicted entry
// closes its program (worker pool + arena).
func (c *programCache) release(e *entry) {
	c.mu.Lock()
	e.refs--
	closeNow := e.evicted && e.refs == 0 && e.res.prog != nil
	c.mu.Unlock()
	if closeNow {
		e.res.prog.Close()
	}
}

func (c *programCache) touch(e *entry) {
	c.seq++
	e.lastUse = c.seq
}

// evictLocked drops least-recently-used idle entries until the cache is
// within capacity. Entries still referenced (or still compiling) are
// skipped — the cache may transiently exceed capacity rather than close a
// program mid-request. Returns the entries whose programs the caller must
// close after dropping the lock.
func (c *programCache) evictLocked() []*entry {
	var out []*entry
	for len(c.entries) > c.capacity {
		var victim *entry
		for _, e := range c.entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		delete(c.entries, victim.key)
		victim.evicted = true
		c.evictions++
		if victim.res.prog != nil {
			out = append(out, victim)
		}
	}
	return out
}

func closeEntries(es []*entry) {
	for _, e := range es {
		e.res.prog.Close()
	}
}

// closeAll evicts everything. Entries with live references are marked
// evicted and close on their final release; the rest close here. Called
// by Service.Close after the request drain, so normally nothing is live.
func (c *programCache) closeAll() {
	c.mu.Lock()
	var toClose []*entry
	for k, e := range c.entries {
		delete(c.entries, k)
		e.evicted = true
		if e.refs == 0 && e.res.prog != nil {
			toClose = append(toClose, e)
		}
	}
	c.mu.Unlock()
	closeEntries(toClose)
}

func (c *programCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

type cacheStats struct {
	hits, misses, compileErrors, evictions int64
}

// stats returns the counter snapshot and the live entries (key, label,
// request count, program) for per-program metrics. Executor snapshots are
// taken by the caller outside the cache lock.
func (c *programCache) stats() (cacheStats, []*entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := cacheStats{c.hits, c.misses, c.compileErrors, c.evictions}
	es := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				es = append(es, e)
			}
		default: // still compiling
		}
	}
	return s, es
}
