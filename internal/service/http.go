package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/apps"
	"repro/internal/obs"
)

// Handler returns the service's HTTP surface:
//
//	POST /run      execute a pipeline (RunRequest -> RunResponse)
//	GET  /healthz  liveness + admission gauges (Health)
//	GET  /metrics  counters + per-program executor snapshots (Metrics);
//	               ?stream=<interval> streams merged obs.Snapshot JSON
//	               lines until the client disconnects
//	GET  /apps     the registered applications and their parameters
//
// Every handler runs behind a recover barrier: a panic answers 500 and
// the process keeps serving.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/apps", s.handleApps)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				writeError(w, errf(500, "internal error: %v", rec))
			}
		}()
		mux.ServeHTTP(w, r)
	})
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, errf(405, "POST only"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, errf(413, "request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, errf(400, "bad request body: %v", err))
		return
	}
	if q := r.URL.Query().Get("frames"); q != "" {
		n, perr := strconv.Atoi(q)
		if perr != nil || n < 1 {
			writeError(w, errSentinel(400, ErrInvalidFrames, "frames query parameter must be a positive integer, got %q", q))
			return
		}
		req.Frames = n
	}
	if req.Frames > 1 {
		s.handleRunStream(w, r, &req)
		return
	}
	resp, err := s.Do(r.Context(), &req)
	if err != nil {
		writeError(w, toError(err))
		return
	}
	writeJSON(w, 200, resp)
}

// handleRunStream answers a frames>1 /run request as ndjson: one
// FrameResult line per frame, flushed as it completes. Failures before
// the first frame come back as an ordinary JSON error with their status;
// once frames have been emitted the status line is gone, so a mid-stream
// failure (deadline, execution error) appends a terminal {"error": ...}
// line instead.
func (s *Service) handleRunStream(w http.ResponseWriter, r *http.Request, req *RunRequest) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(500, "streaming unsupported by this connection"))
		return
	}
	enc := json.NewEncoder(flushWriter{w, fl})
	enc.SetEscapeHTML(false)
	started := false
	err := s.DoStream(r.Context(), req, func(fr *FrameResult) error {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(200)
			started = true
		}
		return enc.Encode(fr)
	})
	if err != nil {
		if !started {
			writeError(w, toError(err))
			return
		}
		enc.Encode(toError(err))
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := 200
	if h.Status != "ok" {
		code = 503
	}
	writeJSON(w, code, h)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stream := r.URL.Query().Get("stream")
	if stream == "" {
		writeJSON(w, 200, s.Metrics())
		return
	}
	interval, err := time.ParseDuration(stream)
	if err != nil {
		writeError(w, errf(400, "bad stream interval %q: %v", stream, err))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(500, "streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(200)
	fl.Flush()
	stop := obs.StreamSnapshots(flushWriter{w, fl}, "", interval, s.Snapshot)
	<-r.Context().Done()
	stop()
}

// flushWriter flushes after every write so each snapshot line reaches the
// client immediately.
type flushWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	f.fl.Flush()
	return n, err
}

// appInfo is one entry of GET /apps.
type appInfo struct {
	Name        string           `json:"name"`
	Title       string           `json:"title"`
	Stages      int              `json:"stages"`
	PaperParams map[string]int64 `json:"paper_params,omitempty"`
	TestParams  map[string]int64 `json:"test_params,omitempty"`
}

func (s *Service) handleApps(w http.ResponseWriter, r *http.Request) {
	var out []appInfo
	for _, a := range apps.All() {
		out = append(out, appInfo{
			Name:        a.Name,
			Title:       a.Title,
			Stages:      a.StageCount(),
			PaperParams: a.PaperParams,
			TestParams:  a.TestParams,
		})
	}
	writeJSON(w, 200, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		fmt.Fprintln(w)
	}
}

func writeError(w http.ResponseWriter, e *Error) {
	if e.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSec))
	}
	writeJSON(w, e.Status, e)
}
