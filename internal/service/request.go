package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/difftest"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// Streaming request validation sentinels: wrapped into the 400 *Error so
// callers (and tests) can classify failures with errors.Is. Each wraps the
// matching engine sentinel, so errors.Is against either the service name
// or the root polymage re-export (polymage.ErrFrames, polymage.ErrROI)
// classifies the failure — one family end to end.
var (
	// ErrInvalidFrames marks a rejected frame count (frames < 1 on the
	// streaming path, or above MaxStreamFrames). Wraps engine.ErrFrames.
	ErrInvalidFrames = fmt.Errorf("service: invalid frame count: %w", engine.ErrFrames)
	// ErrInvalidROI marks a rejected dirty rectangle: malformed ([lo, hi]
	// with lo > hi), present without frames > 1, rank-matching no input
	// image, or lying outside every input image's domain. Wraps
	// engine.ErrROI.
	ErrInvalidROI = fmt.Errorf("service: invalid roi: %w", engine.ErrROI)
)

// MaxStreamFrames bounds one streaming request's frame count; longer
// sequences should be split across requests (the program cache makes the
// follow-up request cheap).
const MaxStreamFrames = 4096

// Output payload modes for RunRequest.Output.
const (
	// OutputChecksum returns each live-out's box and content checksum
	// (the default: responses stay small regardless of image size).
	OutputChecksum = "checksum"
	// OutputData additionally returns the raw float32 data, row-major.
	OutputData = "data"
	// OutputNone returns no per-output payload at all (benchmark mode).
	OutputNone = "none"
)

// RunRequest is the body of POST /run: one pipeline execution. The
// pipeline is named either by a registered benchmark application (App) or
// by an inline specification (Spec, the difftest generator's serializable
// DAG format); compiled programs are cached across requests, keyed by the
// pipeline identity, parameter binding and schedule/execution options.
type RunRequest struct {
	// App names a registered application (see GET /apps). Exactly one of
	// App and Spec must be set.
	App string `json:"app,omitempty"`
	// Spec is an inline pipeline specification. Spec requests are treated
	// as untrusted: construction panics and compile errors come back as
	// HTTP errors, never crash the server.
	Spec *difftest.PipelineSpec `json:"spec,omitempty"`
	// Params binds the pipeline's integer parameters (image sizes). App
	// requests must bind every parameter the app declares; Spec requests
	// ignore it (the spec carries its own extent).
	Params map[string]int64 `json:"params,omitempty"`
	// Seed selects the synthetic input pattern when Inputs is absent
	// (0 = the app default seed, or the spec's own seed).
	Seed int64 `json:"seed,omitempty"`
	// Inputs optionally supplies raw input data per image, row-major over
	// the image's domain box.
	Inputs map[string][]float32 `json:"inputs,omitempty"`
	// Threads overrides the per-program worker count (0 = server default).
	Threads int `json:"threads,omitempty"`
	// Fast selects the specialized float32 kernels (default true).
	Fast *bool `json:"fast,omitempty"`
	// Tiles overrides the schedule's tile sizes (part of the cache key).
	// Mutually exclusive with Auto=true: explicit tiles pin a
	// hand-specified schedule.
	Tiles []int64 `json:"tiles,omitempty"`
	// Auto overrides the server's auto-schedule default for this request:
	// true compiles with the cost-model auto-scheduler
	// (schedule.Options.Auto), false forces the paper's threshold
	// heuristic, absent uses Config.AutoSchedule. Part of the cache key —
	// an auto-scheduled and a hand-scheduled program never collide.
	Auto *bool `json:"auto,omitempty"`
	// Output selects the response payload: "checksum" (default), "data" or
	// "none".
	Output string `json:"output,omitempty"`
	// Verify (Spec only) also runs the reference interpreter and fails the
	// request with 500 if the optimized engine's outputs diverge.
	Verify bool `json:"verify,omitempty"`
	// Perturb (Spec only) builds the fault-injected variant of the spec —
	// stages marked Perturb emulate a miscompiled kernel. With Verify set
	// this is the serving layer's fault-injection hook: the poisoned
	// request fails, the process keeps serving.
	Perturb bool `json:"perturb,omitempty"`
	// Frames > 1 runs the pipeline as a streamed frame sequence of that
	// length (DoStream / POST /run?frames=N, answered as ndjson — one
	// FrameResult line per frame). Frames after the first refresh the
	// inputs with a deterministic per-frame pattern, inside ROI only when
	// one is set. 0 or 1 means single-shot. Not part of the program-cache
	// key: a stream reuses the same compiled program as single-shot runs.
	Frames int `json:"frames,omitempty"`
	// ROI, with Frames > 1, is the dirty rectangle ([lo, hi] inclusive per
	// dimension): per-frame input changes are confined to it, and the
	// engine recomputes only the tiles whose reads reach it, copying every
	// other tile from the previous frame's retained buffers. It must
	// rank-match at least one input image and lie inside its domain. Not
	// part of the program-cache key.
	ROI [][2]int64 `json:"roi,omitempty"`
}

// validate checks request-level invariants that do not need compilation.
func (r *RunRequest) validate() *Error {
	if (r.App == "") == (r.Spec == nil) {
		return errf(400, "exactly one of \"app\" and \"spec\" must be set")
	}
	switch r.Output {
	case "", OutputChecksum, OutputData, OutputNone:
	default:
		return errf(400, "output must be %q, %q or %q", OutputChecksum, OutputData, OutputNone)
	}
	if r.Verify || r.Perturb {
		if r.Spec == nil {
			return errf(400, "verify/perturb require an inline spec")
		}
	}
	if r.Verify {
		if len(r.Inputs) > 0 {
			return errf(400, "verify uses the spec's synthetic inputs; explicit inputs are not supported")
		}
		if r.Seed != 0 && r.Seed != r.Spec.Seed {
			return errf(400, "verify compares against the reference at the spec's own seed %d", r.Spec.Seed)
		}
		if r.Frames > 1 {
			return errf(400, "verify is not supported with frames; the difftest streaming knobs cover frame sequences")
		}
	}
	if r.Auto != nil && *r.Auto && len(r.Tiles) > 0 {
		return errf(400, "auto and tiles are mutually exclusive: explicit tiles pin a hand-specified schedule")
	}
	if r.Frames < 0 || r.Frames > MaxStreamFrames {
		return errSentinel(400, ErrInvalidFrames, "frames must be between 1 and %d, got %d", MaxStreamFrames, r.Frames)
	}
	if len(r.ROI) > 0 {
		if r.Frames <= 1 {
			return errSentinel(400, ErrInvalidROI, "roi requires frames > 1: partial recompute is relative to a previous frame")
		}
		for d, iv := range r.ROI {
			if iv[0] > iv[1] {
				return errSentinel(400, ErrInvalidROI, "roi dim %d: lo %d > hi %d", d, iv[0], iv[1])
			}
		}
	}
	return nil
}

// cacheKey derives the compiled-program cache key: a hash over the
// pipeline identity (app name or full spec JSON plus the perturb flag),
// the parameter binding and every schedule/execution option that changes
// the compiled artifact. Requests that differ only in inputs, seed or
// output mode share a program.
func (r *RunRequest) cacheKey(eo engine.ExecOptions, tiles []int64, auto bool) string {
	h := sha256.New()
	if r.App != "" {
		fmt.Fprintf(h, "app=%s;", r.App)
	} else {
		b, _ := json.Marshal(r.Spec)
		fmt.Fprintf(h, "spec=%s;perturb=%v;", b, r.Perturb)
	}
	names := make([]string, 0, len(r.Params))
	for n := range r.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%s=%d;", n, r.Params[n])
	}
	fmt.Fprintf(h, "threads=%d;fast=%v;metrics=%v;tiles=%v", eo.Threads, eo.Fast, eo.Metrics, tiles)
	if auto {
		// The search digest covers every knob and weight that can change
		// the searched schedule; the search itself is deterministic, so
		// app + params + digest fully identify the compiled artifact.
		fmt.Fprintf(h, ";auto=%s", schedule.DefaultAutoOptions().Digest())
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// OutputResult is one live-out stage's result in a RunResponse.
type OutputResult struct {
	// Box is the output's concrete domain, one [lo, hi] pair per dimension.
	Box [][2]int64 `json:"box"`
	// Checksum fingerprints shape and exact contents (difftest.Checksum).
	Checksum string `json:"checksum,omitempty"`
	// Data is the raw row-major float32 data (Output == "data" only).
	Data []float32 `json:"data,omitempty"`
}

// RunResponse is the body of a successful POST /run.
type RunResponse struct {
	// Pipeline labels the compiled pipeline (app name or spec summary).
	Pipeline string `json:"pipeline"`
	// Key is the program-cache key the request resolved to.
	Key string `json:"key"`
	// Cached reports whether the program was served from the cache; when
	// false, CompileMillis is the compile+bind time this request paid.
	Cached        bool    `json:"cached"`
	CompileMillis float64 `json:"compile_ms,omitempty"`
	// RunMillis is the pipeline execution time (excluding queueing,
	// input synthesis and response encoding).
	RunMillis float64 `json:"run_ms"`
	// Verified reports that the outputs were checked against the
	// reference interpreter (Verify requests only).
	Verified bool                    `json:"verified,omitempty"`
	Outputs  map[string]OutputResult `json:"outputs,omitempty"`
	// AutoScheduled reports that the program was compiled by the
	// cost-model auto-scheduler; ScheduleDigest is a short hash of the
	// schedule actually chosen (grouping + tile sizes), so clients can
	// tell two searched schedules apart.
	AutoScheduled  bool   `json:"auto_scheduled,omitempty"`
	ScheduleDigest string `json:"schedule_digest,omitempty"`
}

// FrameResult is one frame of a streaming request (DoStream /
// POST /run?frames=N): each ndjson line is one of these, emitted as the
// frame completes. Frame 0 additionally carries the program identity that
// RunResponse would — pipeline label, cache key and hit/compile cost.
type FrameResult struct {
	// Frame is the zero-based frame index.
	Frame int `json:"frame"`
	// RunMillis is this frame's execution time.
	RunMillis float64 `json:"run_ms"`
	// TilesExecuted and TilesSkipped account the frame's dirty-rectangle
	// decisions: tiles recomputed versus tiles copied from the previous
	// frame. Whole-frame recomputes (frame 0, or no ROI) report 0/0 — the
	// partial-recompute machinery was not engaged.
	TilesExecuted int64 `json:"tiles_executed"`
	TilesSkipped  int64 `json:"tiles_skipped"`
	// Pipeline, Key, Cached and CompileMillis are set on frame 0 only.
	Pipeline      string                  `json:"pipeline,omitempty"`
	Key           string                  `json:"key,omitempty"`
	Cached        bool                    `json:"cached,omitempty"`
	CompileMillis float64                 `json:"compile_ms,omitempty"`
	Outputs       map[string]OutputResult `json:"outputs,omitempty"`
}

// Error is the service's typed failure: an HTTP status, a message (the
// JSON body), an optional Retry-After hint for overload statuses, and an
// optional wrapped sentinel (ErrInvalidFrames, ErrInvalidROI, engine
// errors) reachable through errors.Is.
type Error struct {
	Status        int    `json:"status"`
	Msg           string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
	// Err classifies the failure for errors.Is; it never reaches the wire.
	Err error `json:"-"`
}

func (e *Error) Error() string { return e.Msg }

// Unwrap exposes the sentinel so errors.Is(err, ErrInvalidROI) works
// through the service boundary.
func (e *Error) Unwrap() error { return e.Err }

func errf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// errSentinel builds an *Error wrapping a classification sentinel.
func errSentinel(status int, sentinel error, format string, args ...any) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...), Err: sentinel}
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int64   `json:"in_flight"`
	Queued        int64   `json:"queued"`
	Programs      int     `json:"programs"`
}

// ProgramMetrics is one cached program's slice of GET /metrics.
type ProgramMetrics struct {
	Key      string       `json:"key"`
	Pipeline string       `json:"pipeline"`
	Requests int64        `json:"requests"`
	Snapshot obs.Snapshot `json:"snapshot"`
	// Stages is the compile-time kernel/row-VM model per stage: which
	// evaluator each piece lowered to, the VM instruction mix, fused-op
	// counts and register high-water (obs.StageModel).
	Stages []obs.StageModel `json:"stages,omitempty"`
}

// Metrics is the body of GET /metrics: service-level counters plus every
// cached program's executor snapshot and their merged aggregate.
type Metrics struct {
	Health          Health           `json:"health"`
	Requests        int64            `json:"requests"`
	Errors          int64            `json:"errors"`
	PanicsRecovered int64            `json:"panics_recovered"`
	Rejected429     int64            `json:"rejected_429"`
	Rejected503     int64            `json:"rejected_503"`
	Timeouts        int64            `json:"timeouts"`
	CacheHits       int64            `json:"cache_hits"`
	CacheMisses     int64            `json:"cache_misses"`
	Compiles        int64            `json:"compiles"`
	CompileErrors   int64            `json:"compile_errors"`
	Evictions       int64            `json:"evictions"`
	Programs        []ProgramMetrics `json:"programs"`
	Merged          obs.Snapshot     `json:"merged"`
}
