// Package service is the pipeline-as-a-service layer: it accepts pipeline
// execution requests (a registered app or an inline spec, plus a parameter
// binding and input data), resolves them through a compiled-program cache,
// and executes them on per-program persistent executors with buffer
// recycling — the serving-path embodiment of the paper's compile-once /
// run-many model.
//
// The request path is panic-free by construction: DSL construction and
// compiler panics are converted to errors at the core.Compile boundary,
// and the service adds its own recover barriers around request handling
// and kernel execution, so a hostile specification costs one HTTP 500,
// never the process. Admission is bounded (an in-flight limit plus a
// short queue; overload answers 429/503 with Retry-After), every request
// runs under a deadline, and Close drains in-flight work before closing
// the cached executors.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/affine"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// defaultSeed matches the harness's default synthetic-input seed.
const defaultSeed = 42

// Config tunes a Service. The zero value is usable: every field has a
// serving-appropriate default.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (0 =
	// GOMAXPROCS). Executors run concurrent requests through the shared
	// process-wide worker fleet, so this bounds memory (live run contexts
	// and buffers) rather than CPU oversubscription.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (0 = default
	// 64, negative = no queue: reject immediately when saturated).
	MaxQueue int
	// QueueTimeout bounds the wait for a slot (default 5s); expiry
	// answers 503.
	QueueTimeout time.Duration
	// RequestTimeout is the per-request deadline, covering queueing,
	// compilation and execution (default 60s). The tighter of this and
	// the caller's context applies.
	RequestTimeout time.Duration
	// MaxPrograms caps the compiled-program cache; least-recently-used
	// idle programs are evicted and closed (default 32).
	MaxPrograms int
	// MaxBodyBytes caps /run request bodies (default 64 MiB).
	MaxBodyBytes int64
	// Threads is the default per-program worker count (0 = GOMAXPROCS);
	// requests may override it. Values above GOMAXPROCS are clamped — the
	// shared fleet never runs more workers than the machine has cores.
	Threads int
	// AutoSchedule makes the cost-model auto-scheduler
	// (schedule.Options.Auto) the default for requests that do not pin a
	// schedule: requests with explicit Tiles keep the hand-specified
	// schedule, and a request's Auto field overrides this default either
	// way. polymage-serve sets it.
	AutoSchedule bool
	// DisableSpecs rejects inline-spec requests (403), leaving only the
	// registered apps callable.
	DisableSpecs bool
	// DisableMetrics compiles programs without the observability
	// recorder; /metrics then reports counters but empty snapshots.
	DisableMetrics bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 64
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if max := runtime.GOMAXPROCS(0); c.Threads > max {
		c.Threads = max
	}
	return c
}

// Service executes pipeline requests against a compiled-program cache.
// Create with New, serve HTTP through Handler, or call Do directly
// (harness.Serve does); Close drains and releases everything.
type Service struct {
	cfg   Config
	cache *programCache
	start time.Time

	// sem holds one token per in-flight execution; queued counts requests
	// waiting for a token.
	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64

	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup

	requests, errs, panics          atomic.Int64
	rejected429, rejected503, slows atomic.Int64

	// beforeRun, when set (tests only), runs on the execution goroutine
	// just before the program runs — the hook overload and deadline tests
	// use to hold a slot deterministically.
	beforeRun func(*RunRequest)
}

// New returns a ready Service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		cache: newProgramCache(cfg.MaxPrograms),
		start: time.Now(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
	}
}

// Do executes one request: admission, program-cache resolution (compiling
// on a miss), input synthesis, execution, optional verification, and
// response encoding. Failures are returned as *Error with an HTTP status;
// panics anywhere on the path are recovered into a 500. Do is safe for
// concurrent use.
func (s *Service) Do(ctx context.Context, req *RunRequest) (resp *RunResponse, err error) {
	s.requests.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp, err = nil, errf(500, "internal error: %v", r)
		}
		if err != nil {
			s.errs.Add(1)
		}
	}()

	if verr := req.validate(); verr != nil {
		return nil, verr
	}
	if req.Frames > 1 {
		return nil, errSentinel(400, ErrInvalidFrames, "frames > 1 must use the streaming path (POST /run?frames=N or DoStream)")
	}
	if req.Spec != nil && s.cfg.DisableSpecs {
		return nil, errf(403, "inline specs are disabled on this server")
	}

	// Track the request for graceful shutdown before anything else; after
	// this point Close waits for us.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &Error{Status: 503, Msg: "server is shutting down", RetryAfterSec: 1}
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()

	// Admission: one slot per executing request, bounded queue behind it.
	// The slot covers compilation too — a cold-cache stampede compiles at
	// most MaxInFlight programs at once.
	release, aerr := s.admit(ctx)
	if aerr != nil {
		return nil, aerr
	}
	handedOff := false
	defer func() {
		if !handedOff {
			release()
		}
	}()

	eo := engine.ExecOptions{
		Threads:      req.Threads,
		Fast:         req.Fast == nil || *req.Fast,
		ReuseBuffers: true,
		Metrics:      !s.cfg.DisableMetrics,
	}
	if eo.Threads == 0 {
		eo.Threads = s.cfg.Threads
	}
	if max := runtime.GOMAXPROCS(0); eo.Threads > max {
		// Clamp before the cache key is built so "Threads: 64" and
		// "Threads: 128" on a 8-core box share one compiled program.
		eo.Threads = max
	}
	auto := s.autoFor(req)
	key := req.cacheKey(eo, req.Tiles, auto)
	e, cached, cerr := s.cache.acquire(ctx, key, func() (compiled, error) {
		return s.build(req, eo, auto)
	})
	if cerr != nil {
		return nil, toError(cerr)
	}
	defer s.cache.release(e)

	inputs, ierr := s.inputsFor(e, req)
	if ierr != nil {
		return nil, ierr
	}

	// Execute on a separate goroutine so the request can time out without
	// abandoning slot accounting: the goroutine owns the admission slot
	// and the shutdown waitgroup until the run actually finishes, and on
	// timeout a drain goroutine recycles the late result.
	type runResult struct {
		out    map[string]*engine.Buffer
		err    error
		millis float64
	}
	ch := make(chan runResult, 1)
	s.wg.Add(1) // safe: our own wg.Add(1) above is still held
	s.inflight.Add(1)
	handedOff = true
	go func() {
		defer s.wg.Done()
		defer s.inflight.Add(-1)
		defer release()
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
				ch <- runResult{err: errf(500, "execution panicked: %v", r)}
			}
		}()
		if s.beforeRun != nil {
			s.beforeRun(req)
		}
		t0 := time.Now()
		out, rerr := e.res.prog.Run(inputs)
		ch <- runResult{out: out, err: rerr, millis: float64(time.Since(t0).Nanoseconds()) / 1e6}
	}()

	var r runResult
	select {
	case r = <-ch:
	case <-ctx.Done():
		// The kernel cannot be interrupted mid-run; abandon it. Its slot
		// frees and its outputs recycle when it completes.
		s.slows.Add(1)
		prog := e.res.prog
		go func() {
			if late := <-ch; late.out != nil {
				prog.Executor().Recycle(late.out)
			}
		}()
		return nil, &Error{Status: 503, Msg: "deadline exceeded while executing; retry with a longer deadline", RetryAfterSec: 2}
	}
	if r.err != nil {
		return nil, toError(r.err)
	}

	recycle := func() { e.res.prog.Executor().Recycle(r.out) }
	if req.Verify {
		ref, rerr := e.reference()
		if rerr != nil {
			recycle()
			return nil, errf(500, "reference execution: %v", rerr)
		}
		for _, lo := range e.res.prog.Graph.LiveOuts {
			if detail := difftest.Compare(r.out[lo], ref[lo], 1e-5, 32); detail != "" {
				recycle()
				return nil, errf(500, "verification failed: output %q: %s", lo, detail)
			}
		}
	}

	resp = &RunResponse{
		Pipeline:  e.res.label,
		Key:       key,
		Cached:    cached,
		RunMillis: r.millis,
		Verified:  req.Verify,
	}
	if gr := e.res.prog.Grouping; gr != nil && gr.Searched {
		resp.AutoScheduled = true
	}
	resp.ScheduleDigest = e.res.prog.ScheduleHash()[:16]
	if !cached {
		resp.CompileMillis = e.res.compileMillis
	}
	if req.Output != OutputNone {
		resp.Outputs = outputResults(e.res.prog, r.out, req.Output)
	}
	recycle()
	return resp, nil
}

// admit acquires an execution slot, queueing briefly when saturated. The
// returned release func must be called exactly once.
func (s *Service) admit(ctx context.Context) (func(), *Error) {
	release := func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, nil
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.rejected429.Add(1)
		return nil, &Error{Status: 429, Msg: "server at capacity: in-flight limit reached and queue full", RetryAfterSec: 1}
	}
	defer s.queued.Add(-1)
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return release, nil
	case <-t.C:
		s.rejected503.Add(1)
		return nil, &Error{Status: 503, Msg: "timed out waiting for an execution slot", RetryAfterSec: 2}
	case <-ctx.Done():
		s.rejected503.Add(1)
		return nil, &Error{Status: 503, Msg: "request deadline expired while queued", RetryAfterSec: 2}
	}
}

// autoFor resolves a request's effective auto-schedule decision: the
// request's explicit Auto wins, then the server default; explicit Tiles
// always pin the hand-specified schedule (validate rejects the
// contradictory Auto=true + Tiles combination up front).
func (s *Service) autoFor(req *RunRequest) bool {
	if len(req.Tiles) > 0 {
		return false
	}
	if req.Auto != nil {
		return *req.Auto
	}
	return s.cfg.AutoSchedule
}

// build compiles the request's pipeline (app or spec) behind the
// compile-barrier: any panic becomes a 500-classed error.
func (s *Service) build(req *RunRequest, eo engine.ExecOptions, auto bool) (c compiled, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			c, err = compiled{}, errf(500, "compile panicked: %v", r)
		}
	}()
	so := schedule.DefaultOptions()
	if len(req.Tiles) > 0 {
		so.TileSizes = append([]int64(nil), req.Tiles...)
	}
	so.Auto = auto
	t0 := time.Now()
	if req.App != "" {
		app, aerr := apps.Get(req.App)
		if aerr != nil {
			return c, errf(404, "%v", aerr)
		}
		b, outs := app.Build()
		pl, perr := core.Compile(b, outs, core.Options{
			Estimates:     req.Params,
			Schedule:      so,
			AllowUnproven: true,
		})
		if perr != nil {
			return c, toError(perr)
		}
		prog, berr := pl.Bind(req.Params, eo)
		if berr != nil {
			return c, toError(berr)
		}
		c = compiled{label: req.App, prog: prog, app: app, builder: b, params: req.Params}
	} else {
		rb, berr := req.Spec.Build(req.Perturb)
		if berr != nil {
			return c, errf(400, "spec: %v", berr)
		}
		pl, perr := core.Compile(rb.Graph.Builder, rb.LiveOuts, core.Options{
			Estimates:     rb.Params,
			Schedule:      so,
			AllowUnproven: true,
		})
		if perr != nil {
			return c, toError(perr)
		}
		prog, berr2 := pl.Bind(rb.Params, eo)
		if berr2 != nil {
			return c, toError(berr2)
		}
		spec := *req.Spec
		c = compiled{label: "spec:" + spec.ShortString(), prog: prog, spec: &spec, params: rb.Params}
	}
	c.compileMillis = float64(time.Since(t0).Nanoseconds()) / 1e6
	return c, nil
}

// inputsFor resolves the request's input buffers: explicit data when
// supplied, otherwise synthetic inputs memoized on the entry per seed.
func (s *Service) inputsFor(e *entry, req *RunRequest) (map[string]*engine.Buffer, *Error) {
	prog := e.res.prog
	if len(req.Inputs) > 0 {
		in := make(map[string]*engine.Buffer, len(req.Inputs))
		for name, data := range req.Inputs {
			box, err := prog.InputBox(name)
			if err != nil {
				return nil, errf(400, "input %q: %v", name, err)
			}
			buf := engine.NewBuffer(box)
			if len(buf.Data) != len(data) {
				return nil, errf(400, "input %q: got %d values, want %d for box %v", name, len(data), len(buf.Data), box)
			}
			copy(buf.Data, data)
			in[name] = buf
		}
		return in, nil
	}

	seed := req.Seed
	if seed == 0 {
		if e.res.spec != nil {
			seed = e.res.spec.Seed
		} else {
			seed = defaultSeed
		}
	}
	e.imu.Lock()
	defer e.imu.Unlock()
	if in, ok := e.inputs[seed]; ok {
		return in, nil
	}
	var in map[string]*engine.Buffer
	if e.res.app != nil {
		var err error
		in, err = e.res.app.Inputs(e.res.builder, e.res.params, seed)
		if err != nil {
			return nil, errf(400, "inputs: %v", err)
		}
	} else {
		in = make(map[string]*engine.Buffer, len(prog.Graph.Images))
		for name := range prog.Graph.Images {
			box, err := prog.InputBox(name)
			if err != nil {
				return nil, errf(500, "input %q: %v", name, err)
			}
			buf := engine.NewBuffer(box)
			engine.FillPattern(buf, seed)
			in[name] = buf
		}
	}
	if e.inputs == nil {
		e.inputs = make(map[int64]map[string]*engine.Buffer)
	}
	// Memoize a handful of seeds; a seed-scanning client should not pin
	// unbounded input memory.
	if len(e.inputs) < 4 {
		e.inputs[seed] = in
	}
	return in, nil
}

// toError maps an internal error to a typed *Error: compile- and
// binding-level failures are the client's fault (400); anything else is a
// server-side 500.
func toError(err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return &Error{Status: 503, Msg: "request deadline expired", RetryAfterSec: 2}
	case errors.Is(err, affine.ErrUnboundParam),
		errors.Is(err, engine.ErrShape),
		errors.Is(err, engine.ErrNilInput),
		errors.Is(err, engine.ErrUnknownStage):
		return &Error{Status: 400, Msg: err.Error()}
	}
	msg := err.Error()
	for _, pre := range []string{"core: ", "pipeline: ", "bounds: ", "inline: ", "schedule: ", "engine: ", "difftest: "} {
		if len(msg) >= len(pre) && msg[:len(pre)] == pre {
			return &Error{Status: 400, Msg: msg}
		}
	}
	return &Error{Status: 500, Msg: msg}
}

// Close drains: new requests are refused with 503, in-flight requests
// (including abandoned-deadline runs) finish, then every cached program's
// executor and arena shut down. ctx bounds the drain; on expiry the
// programs are left to the OS and ctx's error is returned.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
	s.cache.closeAll()
	return nil
}

// Health reports liveness for /healthz.
func (s *Service) Health() Health {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	st := "ok"
	if draining {
		st = "draining"
	}
	return Health{
		Status:        st,
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inflight.Load(),
		Queued:        s.queued.Load(),
		Programs:      s.cache.len(),
	}
}

// Metrics assembles the /metrics body: service counters, cache counters,
// and per-program executor snapshots plus their merged aggregate.
func (s *Service) Metrics() Metrics {
	cs, entries := s.cache.stats()
	m := Metrics{
		Health:          s.Health(),
		Requests:        s.requests.Load(),
		Errors:          s.errs.Load(),
		PanicsRecovered: s.panics.Load(),
		Rejected429:     s.rejected429.Load(),
		Rejected503:     s.rejected503.Load(),
		Timeouts:        s.slows.Load(),
		CacheHits:       cs.hits,
		CacheMisses:     cs.misses,
		Compiles:        cs.misses,
		CompileErrors:   cs.compileErrors,
		Evictions:       cs.evictions,
	}
	snaps := make([]obs.Snapshot, 0, len(entries))
	for _, e := range entries {
		snap := e.res.prog.Executor().Snapshot()
		snaps = append(snaps, snap)
		e.imu.Lock()
		n := e.requests
		e.imu.Unlock()
		m.Programs = append(m.Programs, ProgramMetrics{
			Key:      e.key,
			Pipeline: e.res.label,
			Requests: n,
			Snapshot: snap,
			Stages:   e.res.prog.Stats().Stages,
		})
	}
	m.Merged = obs.Merge(snaps...)
	return m
}

// Snapshot returns the merged executor snapshot across all cached
// programs — the stream source for /metrics?stream and harness.Serve.
func (s *Service) Snapshot() obs.Snapshot {
	_, entries := s.cache.stats()
	snaps := make([]obs.Snapshot, 0, len(entries))
	for _, e := range entries {
		snaps = append(snaps, e.res.prog.Executor().Snapshot())
	}
	return obs.Merge(snaps...)
}
