package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/difftest"
)

// testSpec is a small deterministic pipeline: a 3-tap stencil feeding a
// copy stage that carries the fault-injection hook (Perturb scales its
// definition by 1.001 when a perturbed build is requested).
func testSpec() *difftest.PipelineSpec {
	return &difftest.PipelineSpec{
		Seed: 5, Rank: 1, N: 64,
		Stages: []difftest.StageSpec{
			{Kind: difftest.KindStencil3, P: -1},
			{Kind: difftest.KindCopy, P: 0, Perturb: true},
		},
	}
}

// post sends req to the server's /run and decodes the response body.
func post(t *testing.T, url string, req *RunRequest) (int, http.Header, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, body)
}

func postRaw(t *testing.T, url string, body []byte) (int, http.Header, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, resp.Header, m
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestErrorPathsKeepServing is the acceptance trio: a malformed request
// body, a malformed spec, and an unbound parameter each produce an HTTP
// error — and after every failure the same process still serves a correct
// response.
func TestErrorPathsKeepServing(t *testing.T) {
	svc := New(Config{})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	good := func(label string) {
		t.Helper()
		code, _, m := post(t, srv.URL, &RunRequest{Spec: testSpec()})
		if code != 200 {
			t.Fatalf("after %s: good request = %d (%v), want 200", label, code, m["error"])
		}
		outs, ok := m["outputs"].(map[string]any)
		if !ok || len(outs) == 0 {
			t.Fatalf("after %s: good request returned no outputs: %v", label, m)
		}
	}
	good("start")

	// Not JSON at all.
	if code, _, _ := postRaw(t, srv.URL, []byte("not json{")); code != 400 {
		t.Fatalf("garbage body = %d, want 400", code)
	}
	good("garbage body")

	// Unknown field (strict decoding).
	if code, _, _ := postRaw(t, srv.URL, []byte(`{"nope": 1}`)); code != 400 {
		t.Fatalf("unknown field = %d, want 400", code)
	}

	// Neither app nor spec / both at once.
	if code, _, _ := post(t, srv.URL, &RunRequest{}); code != 400 {
		t.Fatal("empty request must 400")
	}
	if code, _, _ := post(t, srv.URL, &RunRequest{App: "harris", Spec: testSpec()}); code != 400 {
		t.Fatal("app+spec must 400")
	}

	// Malformed spec: no stages.
	code, _, m := post(t, srv.URL, &RunRequest{Spec: &difftest.PipelineSpec{Seed: 1}})
	if code != 400 || !strings.Contains(fmt.Sprint(m["error"]), "empty spec") {
		t.Fatalf("empty spec = %d %v, want 400 mentioning empty spec", code, m)
	}
	good("malformed spec")

	// Unknown app.
	if code, _, _ := post(t, srv.URL, &RunRequest{App: "no-such-app"}); code != 404 {
		t.Fatal("unknown app must 404")
	}

	// Unbound parameter: a real app with no parameter binding.
	name := apps.Names()[0]
	code, _, m = post(t, srv.URL, &RunRequest{App: name})
	if code != 400 {
		t.Fatalf("unbound params for %s = %d (%v), want 400", name, code, m["error"])
	}
	good("unbound parameter")

	// Bad explicit input name and shape.
	if code, _, _ = post(t, srv.URL, &RunRequest{Spec: testSpec(), Inputs: map[string][]float32{"bogus": {1}}}); code != 400 {
		t.Fatal("unknown input image must 400")
	}
	if code, _, _ = post(t, srv.URL, &RunRequest{Spec: testSpec(), Inputs: map[string][]float32{"I": {1, 2, 3}}}); code != 400 {
		t.Fatal("short input data must 400")
	}
	good("bad inputs")

	var h Health
	if code := getJSON(t, srv.URL+"/healthz", &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v, want 200 ok", code, h)
	}
}

// TestFaultInjectionPerturb is the service-level fault-injection check:
// a difftest.Perturb-poisoned kernel under verification returns HTTP 500,
// and the same process keeps serving correct (and verifiable) responses.
func TestFaultInjectionPerturb(t *testing.T) {
	svc := New(Config{})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sp := testSpec()

	// Poisoned request: the served program is built from the perturbed
	// spec, the reference from the clean one — verification must fail.
	code, _, m := post(t, srv.URL, &RunRequest{Spec: sp, Perturb: true, Verify: true})
	if code != 500 || !strings.Contains(fmt.Sprint(m["error"]), "verification failed") {
		t.Fatalf("perturbed+verify = %d %v, want 500 verification failure", code, m)
	}

	// The process keeps serving: the clean program verifies...
	code, _, m = post(t, srv.URL, &RunRequest{Spec: sp, Verify: true})
	if code != 200 || m["verified"] != true {
		t.Fatalf("clean+verify = %d %v, want 200 verified", code, m)
	}
	cleanSum := outputChecksums(t, m)

	// ...and the perturbed program without verification actually produces
	// different data (the poison is real, not a verification artifact).
	code, _, m = post(t, srv.URL, &RunRequest{Spec: sp, Perturb: true})
	if code != 200 {
		t.Fatalf("perturbed without verify = %d %v, want 200", code, m)
	}
	if sums := outputChecksums(t, m); sums == cleanSum {
		t.Fatalf("perturbed and clean outputs have identical checksums %s", sums)
	}

	// Error accounting: exactly the one poisoned request failed.
	met := svc.Metrics()
	if met.Errors != 1 {
		t.Fatalf("errors = %d, want 1", met.Errors)
	}
}

func outputChecksums(t *testing.T, m map[string]any) string {
	t.Helper()
	outs, ok := m["outputs"].(map[string]any)
	if !ok || len(outs) == 0 {
		t.Fatalf("response has no outputs: %v", m)
	}
	b, _ := json.Marshal(outs)
	return string(b)
}

// TestConcurrentColdWarmShutdown exercises the singleflight compile path
// (N concurrent cold requests, one compile), warm hits, and a graceful
// shutdown racing live traffic. Run under -race via the Makefile's race
// target.
func TestConcurrentColdWarmShutdown(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const workers = 8
	const perWorker = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, _, m := post(t, srv.URL, &RunRequest{Spec: testSpec()})
				if code != 200 {
					errs <- fmt.Errorf("request = %d (%v)", code, m["error"])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	met := svc.Metrics()
	if met.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (singleflight dedup)", met.CacheMisses)
	}
	if want := int64(workers*perWorker - 1); met.CacheHits != want {
		t.Errorf("cache hits = %d, want %d", met.CacheHits, want)
	}

	// Shutdown racing live traffic: every request either succeeds or is
	// refused with 503, never anything else, and Close drains cleanly.
	spec2 := testSpec()
	spec2.Seed = 6
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < perWorker; i++ {
				code, _, m := post(t, srv.URL, &RunRequest{Spec: spec2})
				if code != 200 && code != 503 {
					errs := fmt.Sprintf("during shutdown: code %d (%v)", code, m["error"])
					t.Error(errs)
					return
				}
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg2.Wait()

	// Fully drained: new work is refused, health reports draining.
	if code, _, _ := post(t, srv.URL, &RunRequest{Spec: testSpec()}); code != 503 {
		t.Errorf("request after Close = %d, want 503", code)
	}
	var h Health
	if code := getJSON(t, srv.URL+"/healthz", &h); code != 503 || h.Status != "draining" {
		t.Errorf("healthz after Close = %d %+v, want 503 draining", code, h)
	}
	if h.InFlight != 0 || h.Queued != 0 {
		t.Errorf("after drain: in_flight=%d queued=%d, want 0/0", h.InFlight, h.Queued)
	}
}

// TestAdmissionControl pins the overload ladder with one execution slot:
// slot busy -> second request queues -> third bounces 429 (queue full) ->
// the queued one times out with 503; both carry Retry-After. The blocked
// run then completes and the service is healthy again.
func TestAdmissionControl(t *testing.T) {
	svc := New(Config{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: 150 * time.Millisecond,
	})
	defer svc.Close(context.Background())

	// Warm the program with no hook installed.
	if _, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec()}); err != nil {
		t.Fatal(err)
	}

	// From here, every run blocks until gate is closed.
	gate := make(chan struct{})
	svc.beforeRun = func(*RunRequest) { <-gate }
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	type result struct {
		code int
		hdr  http.Header
	}
	fire := func() chan result {
		ch := make(chan result, 1)
		go func() {
			code, hdr, _ := post(t, srv.URL, &RunRequest{Spec: testSpec()})
			ch <- result{code, hdr}
		}()
		return ch
	}

	holder := fire() // acquires the slot, blocks in beforeRun
	waitFor(t, "slot held", func() bool { return svc.inflight.Load() == 1 })
	queued := fire() // sits in the queue
	waitFor(t, "request queued", func() bool { return svc.queued.Load() == 1 })

	// Queue is full now: immediate 429 with Retry-After.
	code, hdr, _ := post(t, srv.URL, &RunRequest{Spec: testSpec()})
	if code != 429 {
		t.Fatalf("over-capacity request = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// The queued request gives up after QueueTimeout.
	r := <-queued
	if r.code != 503 {
		t.Fatalf("queued request = %d, want 503 after queue timeout", r.code)
	}
	if r.hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	// Release the slot: the holder completes, and the service serves again.
	close(gate)
	if r := <-holder; r.code != 200 {
		t.Fatalf("holder = %d, want 200", r.code)
	}
	if code, _, m := post(t, srv.URL, &RunRequest{Spec: testSpec()}); code != 200 {
		t.Fatalf("after overload: %d (%v), want 200", code, m["error"])
	}

	met := svc.Metrics()
	if met.Rejected429 != 1 || met.Rejected503 != 1 {
		t.Errorf("rejections 429=%d 503=%d, want 1/1", met.Rejected429, met.Rejected503)
	}
}

// TestRequestDeadline: a request whose run exceeds its deadline answers
// 503 while the abandoned run finishes in the background; its slot frees
// and the next request succeeds.
func TestRequestDeadline(t *testing.T) {
	svc := New(Config{MaxInFlight: 1, RequestTimeout: 50 * time.Millisecond})
	defer svc.Close(context.Background())

	if _, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec()}); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	svc.beforeRun = func(*RunRequest) { <-block }

	_, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec()})
	se, ok := err.(*Error)
	if !ok || se.Status != 503 {
		t.Fatalf("deadline-exceeded run: err = %v, want *Error 503", err)
	}
	if svc.slows.Load() != 1 {
		t.Errorf("timeouts = %d, want 1", svc.slows.Load())
	}

	// Unblock the abandoned run (the hook stays installed but no longer
	// blocks on the closed channel); once it drains, the slot frees.
	close(block)
	waitFor(t, "slot released", func() bool { return svc.inflight.Load() == 0 })
	if _, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec()}); err != nil {
		t.Fatalf("after abandoned run: %v", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAppRequest runs a real registered app end-to-end over HTTP with its
// test-size parameters, cold then warm.
func TestAppRequest(t *testing.T) {
	svc := New(Config{})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var infos []struct {
		Name       string           `json:"name"`
		TestParams map[string]int64 `json:"test_params"`
	}
	if code := getJSON(t, srv.URL+"/apps", &infos); code != 200 || len(infos) == 0 {
		t.Fatalf("/apps = %d with %d entries", code, len(infos))
	}
	app := infos[0]
	req := &RunRequest{App: app.Name, Params: app.TestParams}
	code, _, m := post(t, srv.URL, req)
	if code != 200 || m["cached"] != false {
		t.Fatalf("cold app request = %d %v, want 200 uncached", code, m["error"])
	}
	cold := outputChecksums(t, m)
	code, _, m = post(t, srv.URL, req)
	if code != 200 || m["cached"] != true {
		t.Fatalf("warm app request = %d, want 200 cached", code)
	}
	if warm := outputChecksums(t, m); warm != cold {
		t.Fatalf("warm checksums %s != cold %s", warm, cold)
	}
}

// TestLRUEviction: with a 1-program cache, a second pipeline evicts the
// first; re-requesting the first recompiles, and nothing crashes or
// leaks refs while the evicted program has in-flight users.
func TestLRUEviction(t *testing.T) {
	svc := New(Config{MaxPrograms: 1})
	defer svc.Close(context.Background())

	a, b := testSpec(), testSpec()
	b.Seed = 7
	ctx := context.Background()
	if _, err := svc.Do(ctx, &RunRequest{Spec: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Do(ctx, &RunRequest{Spec: b}); err != nil {
		t.Fatal(err)
	}
	met := svc.Metrics()
	if met.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", met.Evictions)
	}
	resp, err := svc.Do(ctx, &RunRequest{Spec: a})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("evicted program reported as cached")
	}
}

// TestFleetServiceEvictionUnderLoad: refcounted LRU eviction while many
// goroutines hammer the service across more programs than the cache holds.
// With MaxPrograms below the working set every other request churns the
// cache, so evictions constantly race in-flight runs of the evicted
// programs — the refcount must keep each program alive until its last
// user finishes, and every response must stay correct (run with -race).
func TestFleetServiceEvictionUnderLoad(t *testing.T) {
	const (
		programs  = 4
		clients   = 8
		perClient = 8
	)
	svc := New(Config{MaxPrograms: 2, MaxInFlight: clients, MaxQueue: -1})
	defer svc.Close(context.Background())

	specs := make([]*difftest.PipelineSpec, programs)
	want := make([]string, programs)
	ctx := context.Background()
	for i := range specs {
		specs[i] = testSpec()
		specs[i].Seed = int64(100 + i)
		resp, err := svc.Do(ctx, &RunRequest{Spec: specs[i]})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range resp.Outputs {
			want[i] = o.Checksum
		}
		if want[i] == "" {
			t.Fatalf("spec %d: no output checksum", i)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				i := (c + k) % programs
				resp, err := svc.Do(ctx, &RunRequest{Spec: specs[i]})
				if err != nil {
					errs <- fmt.Errorf("client %d spec %d: %v", c, i, err)
					return
				}
				for _, o := range resp.Outputs {
					if o.Checksum != want[i] {
						errs <- fmt.Errorf("client %d spec %d: checksum %s, want %s", c, i, o.Checksum, want[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	met := svc.Metrics()
	if met.Evictions == 0 {
		t.Fatal("working set of 4 programs in a 2-slot cache produced no evictions")
	}
	// Eviction runs at insert time, so over-capacity entries parked by
	// referenced-at-eviction races linger until the next miss; one more
	// fresh compile must bring the cache back within bounds.
	fresh := testSpec()
	fresh.Seed = 999
	if _, err := svc.Do(ctx, &RunRequest{Spec: fresh}); err != nil {
		t.Fatal(err)
	}
	if got := svc.cache.len(); got > 2 {
		t.Fatalf("cache holds %d entries after idle insert, capacity 2", got)
	}
}
