package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// TestServeSmoke is the `make serve-smoke` target: an in-process server
// fired through the whole happy/unhappy surface — cold and warm requests,
// overload, an oversized body, /healthz, /metrics and the snapshot
// stream — as one quick end-to-end gate.
func TestServeSmoke(t *testing.T) {
	svc := New(Config{
		MaxInFlight:  1,
		MaxQueue:     -1, // no queue: saturation answers 429 immediately
		MaxBodyBytes: 1 << 12,
	})
	defer svc.Close(context.Background())
	gate := make(chan struct{})
	blocking := make(chan struct{}, 1)
	svc.beforeRun = func(r *RunRequest) {
		if r.Seed == 999 { // the overload probe's designated holder
			blocking <- struct{}{}
			<-gate
		}
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Liveness before any work.
	var h Health
	if code := getJSON(t, srv.URL+"/healthz", &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}

	// Cold then warm.
	code, _, m := post(t, srv.URL, &RunRequest{Spec: testSpec()})
	if code != 200 || m["cached"] != false {
		t.Fatalf("cold = %d %v", code, m["error"])
	}
	code, _, m = post(t, srv.URL, &RunRequest{Spec: testSpec()})
	if code != 200 || m["cached"] != true {
		t.Fatalf("warm = %d %v", code, m["error"])
	}

	// Oversized body: 4 KiB limit, ~2k floats of explicit input.
	big := &RunRequest{Spec: testSpec(), Inputs: map[string][]float32{"I": make([]float32, 2048)}}
	if code, _, _ := post(t, srv.URL, big); code != 413 {
		t.Fatalf("oversized body = %d, want 413", code)
	}

	// Overload: one request holds the single slot, the next bounces.
	holder := make(chan int, 1)
	go func() {
		code, _, _ := post(t, srv.URL, &RunRequest{Spec: testSpec(), Seed: 999})
		holder <- code
	}()
	<-blocking
	code, hdr, _ := post(t, srv.URL, &RunRequest{Spec: testSpec()})
	if code != 429 || hdr.Get("Retry-After") == "" {
		t.Fatalf("overload = %d (Retry-After %q), want 429 with Retry-After", code, hdr.Get("Retry-After"))
	}
	close(gate)
	if code := <-holder; code != 200 {
		t.Fatalf("holder = %d, want 200", code)
	}

	// Metrics: counters moved and the merged snapshot saw real runs.
	var met Metrics
	if code := getJSON(t, srv.URL+"/metrics", &met); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if met.Requests < 4 || met.CacheHits < 1 || met.CacheMisses < 1 {
		t.Fatalf("metrics counters off: %+v", met)
	}
	if met.Rejected429 != 1 {
		t.Fatalf("rejected_429 = %d, want 1", met.Rejected429)
	}
	if len(met.Programs) == 0 || met.Merged.Runs == 0 || !met.Merged.Enabled {
		t.Fatalf("metrics snapshots empty: programs=%d merged.runs=%d", len(met.Programs), met.Merged.Runs)
	}

	// Snapshot stream: at least one obs.Snapshot JSON line arrives.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/metrics?stream=20ms", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("stream content type = %q", ct)
	}
	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(line, &snap); err != nil {
		t.Fatalf("stream line %q: %v", line, err)
	}
	if snap.Runs == 0 {
		t.Fatal("streamed snapshot has no runs")
	}
	cancel()

	// Bad stream interval.
	if code := func() int {
		resp, err := http.Get(srv.URL + "/metrics?stream=bogus")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}(); code != 400 {
		t.Fatalf("bad stream interval = %d, want 400", code)
	}
}

// warmSpec is big enough that one run costs real time (~a millisecond),
// so per-request service overhead is measured against realistic work.
func warmSpec() *difftest.PipelineSpec {
	return &difftest.PipelineSpec{
		Seed: 11, Rank: 2, N: 256,
		Stages: []difftest.StageSpec{
			{Kind: difftest.KindStencil2D, P: -1},
			{Kind: difftest.KindStencil3, P: 0, Axis: 1},
			{Kind: difftest.KindCopy, P: 1},
		},
	}
}

// TestWarmLatencyParity guards the acceptance bound: warm-cache requests
// through the full service path must stay close to the direct
// executor loop (the pre-service harness.Serve shape). The benchmarks
// below measure the precise ratio; this test only catches gross
// regressions (2x) so it stays robust on noisy CI machines.
func TestWarmLatencyParity(t *testing.T) {
	svc := New(Config{})
	defer svc.Close(context.Background())
	ctx := context.Background()
	req := &RunRequest{Spec: warmSpec(), Output: OutputNone}
	if _, err := svc.Do(ctx, req); err != nil {
		t.Fatal(err)
	}

	// Direct executor loop on an identical, separately compiled program.
	rb, err := warmSpec().Build(false)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compileDirect(rb.Graph.Builder, rb.LiveOuts, rb.Params)
	if err != nil {
		t.Fatal(err)
	}
	defer prog.Close()
	if out, err := prog.Run(rb.Inputs); err != nil {
		t.Fatal(err)
	} else {
		prog.Executor().Recycle(out)
	}

	const iters = 30
	direct := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		out, err := prog.Run(rb.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		prog.Executor().Recycle(out)
		if d := time.Since(start); d < direct {
			direct = d
		}
	}
	service := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := svc.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < service {
			service = d
		}
	}
	t.Logf("warm latency: direct %v, service %v (x%.3f)", direct, service,
		float64(service)/float64(direct))
	if service > 2*direct+time.Millisecond {
		t.Errorf("service warm latency %v vs direct %v: overhead too high", service, direct)
	}
}

// BenchmarkWarmRequest measures the full warm-cache service path
// (admission, cache hit, memoized inputs, run, recycle); compare with
// BenchmarkDirectExecutor for the acceptance criterion's within-10%
// bound.
func BenchmarkWarmRequest(b *testing.B) {
	svc := New(Config{})
	defer svc.Close(context.Background())
	ctx := context.Background()
	req := &RunRequest{Spec: warmSpec(), Output: OutputNone}
	if _, err := svc.Do(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// compileDirect compiles with the same engine options the service uses,
// but with no serving layer around the executor.
func compileDirect(b *dsl.Builder, liveOuts []string, params map[string]int64) (*engine.Program, error) {
	pl, err := core.Compile(b, liveOuts, core.Options{
		Estimates:     params,
		Schedule:      schedule.DefaultOptions(),
		AllowUnproven: true,
	})
	if err != nil {
		return nil, err
	}
	return pl.Bind(params, engine.ExecOptions{Fast: true, ReuseBuffers: true, Metrics: true})
}

// BenchmarkDirectExecutor is the baseline: the same pipeline on a bare
// persistent executor with no serving layer.
func BenchmarkDirectExecutor(b *testing.B) {
	rb, err := warmSpec().Build(false)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compileDirect(rb.Graph.Builder, rb.LiveOuts, rb.Params)
	if err != nil {
		b.Fatal(err)
	}
	defer prog.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := prog.Run(rb.Inputs)
		if err != nil {
			b.Fatal(err)
		}
		prog.Executor().Recycle(out)
	}
}
