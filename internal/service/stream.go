package service

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/affine"
	"repro/internal/difftest"
	"repro/internal/engine"
)

// DoStream executes one streaming request: the same admission,
// program-cache resolution and input synthesis as Do, then req.Frames
// sequential frames through an engine.Stream — buffers, scratchpads and
// per-worker state are reused frame-to-frame, and with an ROI set the
// engine recomputes only the tiles the per-frame input change touches.
// emit is called once per completed frame, in order, on the caller's
// goroutine; a non-nil emit error aborts the sequence. Frames after the
// first evolve the inputs with a deterministic per-frame pattern,
// confined to the ROI when one is set.
//
// Deadline expiry mid-stream abandons cleanly: DoStream returns 503, the
// frames already emitted stay valid, and the in-flight frame finishes in
// the background before its admission slot, cache reference and retained
// buffers are released.
func (s *Service) DoStream(ctx context.Context, req *RunRequest, emit func(*FrameResult) error) (err error) {
	s.requests.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			err = errf(500, "internal error: %v", r)
		}
		if err != nil {
			s.errs.Add(1)
		}
	}()

	if verr := req.validate(); verr != nil {
		return verr
	}
	if req.Frames < 1 {
		return errSentinel(400, ErrInvalidFrames, "streaming requires frames >= 1, got %d", req.Frames)
	}
	if req.Spec != nil && s.cfg.DisableSpecs {
		return errf(403, "inline specs are disabled on this server")
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return &Error{Status: 503, Msg: "server is shutting down", RetryAfterSec: 1}
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()

	release, aerr := s.admit(ctx)
	if aerr != nil {
		return aerr
	}
	handedOff := false
	defer func() {
		if !handedOff {
			release()
		}
	}()

	eo := engine.ExecOptions{
		Threads:      req.Threads,
		Fast:         req.Fast == nil || *req.Fast,
		ReuseBuffers: true,
		Metrics:      !s.cfg.DisableMetrics,
	}
	if eo.Threads == 0 {
		eo.Threads = s.cfg.Threads
	}
	if max := runtime.GOMAXPROCS(0); eo.Threads > max {
		eo.Threads = max
	}
	// Frames and ROI are deliberately absent from the key: a stream runs
	// the same compiled program single-shot requests share.
	auto := s.autoFor(req)
	key := req.cacheKey(eo, req.Tiles, auto)
	e, cached, cerr := s.cache.acquire(ctx, key, func() (compiled, error) {
		return s.build(req, eo, auto)
	})
	if cerr != nil {
		return toError(cerr)
	}
	cacheHeld := true
	defer func() {
		if cacheHeld {
			s.cache.release(e)
		}
	}()
	prog := e.res.prog

	base, ierr := s.inputsFor(e, req)
	if ierr != nil {
		return ierr
	}
	// The memoized seed inputs are shared across requests; the stream
	// mutates its inputs per frame, so it works on private clones.
	inputs := make(map[string]*engine.Buffer, len(base))
	for n, b := range base {
		cb := engine.NewBuffer(b.Box)
		copy(cb.Data, b.Data)
		inputs[n] = cb
	}

	var roi affine.Box
	if len(req.ROI) > 0 {
		roi = make(affine.Box, len(req.ROI))
		for d, iv := range req.ROI {
			roi[d] = affine.Range{Lo: iv[0], Hi: iv[1]}
		}
		if verr := validateROI(prog, roi); verr != nil {
			return verr
		}
	}

	st, serr := prog.Executor().NewStream(engine.StreamOptions{})
	if serr != nil {
		return toError(serr)
	}

	seed := req.Seed
	if seed == 0 {
		if e.res.spec != nil {
			seed = e.res.spec.Seed
		} else {
			seed = defaultSeed
		}
	}

	// Frames execute on their own goroutine so the request can time out
	// (or the client disconnect) without abandoning slot accounting: the
	// goroutine owns the admission slot, the shutdown waitgroup and the
	// program-cache reference until the stream actually winds down.
	type frameMsg struct {
		fr  *FrameResult
		err error
	}
	ch := make(chan frameMsg)
	done := make(chan struct{})
	s.wg.Add(1) // safe: our own wg.Add(1) above is still held
	s.inflight.Add(1)
	handedOff = true
	cacheHeld = false
	go func() {
		defer s.wg.Done()
		defer s.inflight.Add(-1)
		defer release()
		defer s.cache.release(e)
		defer st.Close()
		defer close(ch)
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
				select {
				case ch <- frameMsg{err: errf(500, "execution panicked: %v", r)}:
				case <-done:
				}
			}
		}()
		tmp := &engine.Buffer{}
		var prev engine.StreamStats
		for f := 0; f < req.Frames; f++ {
			select {
			case <-done:
				return
			default:
			}
			if s.beforeRun != nil {
				s.beforeRun(req)
			}
			var frameROI affine.Box
			if f > 0 {
				refreshInputs(inputs, roi, seed*1009+int64(f)*37, tmp)
				frameROI = roi
			}
			t0 := time.Now()
			out, rerr := st.RunFrame(inputs, frameROI)
			if rerr != nil {
				select {
				case ch <- frameMsg{err: rerr}:
				case <-done:
				}
				return
			}
			stats := st.Stats()
			fr := &FrameResult{
				Frame:         f,
				RunMillis:     float64(time.Since(t0).Nanoseconds()) / 1e6,
				TilesExecuted: stats.TilesExecuted - prev.TilesExecuted,
				TilesSkipped:  stats.TilesSkipped - prev.TilesSkipped,
			}
			prev = stats
			if f == 0 {
				fr.Pipeline = e.res.label
				fr.Key = key
				fr.Cached = cached
				if !cached {
					fr.CompileMillis = e.res.compileMillis
				}
			}
			if req.Output != OutputNone {
				// Encode before the next frame: the stream owns the output
				// buffers and rotates them on the next RunFrame.
				fr.Outputs = outputResults(prog, out, req.Output)
			}
			select {
			case ch <- frameMsg{fr: fr}:
			case <-done:
				return
			}
		}
	}()

	defer close(done)
	for {
		select {
		case msg, ok := <-ch:
			if !ok {
				return nil
			}
			if msg.err != nil {
				return toError(msg.err)
			}
			if eerr := emit(msg.fr); eerr != nil {
				return errf(500, "emit frame %d: %v", msg.fr.Frame, eerr)
			}
		case <-ctx.Done():
			s.slows.Add(1)
			return &Error{Status: 503, Msg: "deadline exceeded mid-stream; frames already emitted are valid", RetryAfterSec: 2}
		}
	}
}

// validateROI checks a request ROI against the program's input domains:
// it must rank-match at least one input image and lie inside the domain
// of one of those — an out-of-bounds rectangle is a client error, not a
// silently-empty recompute.
func validateROI(prog *engine.Program, roi affine.Box) *Error {
	matched, inside := false, false
	for name := range prog.Graph.Images {
		box, err := prog.InputBox(name)
		if err != nil {
			return errf(500, "input %q: %v", name, err)
		}
		if len(box) != len(roi) {
			continue
		}
		matched = true
		contains := true
		for d := range roi {
			if roi[d].Lo < box[d].Lo || roi[d].Hi > box[d].Hi {
				contains = false
				break
			}
		}
		if contains {
			inside = true
			break
		}
	}
	if !matched {
		return errSentinel(400, ErrInvalidROI, "roi rank %d matches no input image", len(roi))
	}
	if !inside {
		return errSentinel(400, ErrInvalidROI, "roi %v lies outside every input image's domain", roi)
	}
	return nil
}

// refreshInputs evolves the frame inputs in place: without an ROI every
// buffer refills with the frame seed; with one, only the ROI region of
// rank-matching buffers is refreshed — upholding the dirty-rectangle
// promise that nothing outside it changed. Iteration is name-ordered so
// identical requests produce identical frame sequences.
func refreshInputs(inputs map[string]*engine.Buffer, roi affine.Box, seed int64, tmp *engine.Buffer) {
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, name := range names {
		b := inputs[name]
		if roi == nil {
			engine.FillPattern(b, seed+int64(i))
			continue
		}
		if len(b.Box) != len(roi) {
			continue
		}
		inter := make(affine.Box, len(roi))
		empty := false
		for d := range roi {
			inter[d] = roi[d].Intersect(b.Box[d])
			if inter[d].Empty() {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		tmp.Reset(inter)
		engine.FillPattern(tmp, seed+int64(i))
		b.CopyRegion(tmp, inter)
	}
}

// outputResults encodes the live-out buffers per the request's output
// mode (shared by Do and DoStream).
func outputResults(prog *engine.Program, out map[string]*engine.Buffer, mode string) map[string]OutputResult {
	res := make(map[string]OutputResult, len(prog.Graph.LiveOuts))
	for _, lo := range prog.Graph.LiveOuts {
		b := out[lo]
		if b == nil {
			continue
		}
		o := OutputResult{Box: make([][2]int64, len(b.Box))}
		for d, iv := range b.Box {
			o.Box[d] = [2]int64{iv.Lo, iv.Hi}
		}
		o.Checksum = fmt.Sprintf("%016x", difftest.Checksum(b))
		if mode == OutputData {
			o.Data = append([]float32(nil), b.Data...)
		}
		res[lo] = o
	}
	return res
}
