package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/difftest"
)

// testSpec2D is a two-dimensional tiled pipeline for the dirty-rectangle
// streaming tests: two stencil stages over a 64x64 image.
func testSpec2D() *difftest.PipelineSpec {
	return &difftest.PipelineSpec{
		Seed: 11, Rank: 2, N: 64,
		Stages: []difftest.StageSpec{
			{Kind: difftest.KindStencil5, P: -1},
			{Kind: difftest.KindStencil3, P: 0},
		},
	}
}

func collectFrames(t *testing.T, svc *Service, req *RunRequest) ([]*FrameResult, error) {
	t.Helper()
	var frames []*FrameResult
	err := svc.DoStream(context.Background(), req, func(fr *FrameResult) error {
		frames = append(frames, fr)
		return nil
	})
	return frames, err
}

// TestStreamValidation is the table-driven request-validation gauntlet:
// every malformed streaming request answers 400 with the matching
// sentinel reachable through errors.Is — never a 500 — and the service
// keeps serving afterwards.
func TestStreamValidation(t *testing.T) {
	svc := New(Config{})
	defer svc.Close(context.Background())

	cases := []struct {
		name     string
		req      *RunRequest
		sentinel error
	}{
		{"frames zero", &RunRequest{Spec: testSpec2D(), Frames: 0}, ErrInvalidFrames},
		{"frames negative", &RunRequest{Spec: testSpec2D(), Frames: -3}, ErrInvalidFrames},
		{"frames over cap", &RunRequest{Spec: testSpec2D(), Frames: MaxStreamFrames + 1}, ErrInvalidFrames},
		{"roi lo above hi", &RunRequest{Spec: testSpec2D(), Frames: 3, ROI: [][2]int64{{20, 10}, {0, 8}}}, ErrInvalidROI},
		{"roi without frames", &RunRequest{Spec: testSpec2D(), ROI: [][2]int64{{0, 8}, {0, 8}}}, ErrInvalidROI},
		{"roi rank mismatch", &RunRequest{Spec: testSpec2D(), Frames: 3, ROI: [][2]int64{{0, 8}}}, ErrInvalidROI},
		{"roi out of bounds", &RunRequest{Spec: testSpec2D(), Frames: 3, ROI: [][2]int64{{0, 8}, {500, 600}}}, ErrInvalidROI},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := collectFrames(t, svc, tc.req)
			if err == nil {
				t.Fatal("malformed request accepted")
			}
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("err = %T %v, want *Error", err, err)
			}
			if se.Status != 400 {
				t.Fatalf("status = %d (%s), want 400 — a malformed request must never be a server error", se.Status, se.Msg)
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
		})
	}

	// Do refuses multi-frame requests (they need the streaming path) with
	// the same classifiable sentinel.
	_, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec2D(), Frames: 3})
	if !errors.Is(err, ErrInvalidFrames) {
		t.Fatalf("Do with frames=3: err = %v, want ErrInvalidFrames", err)
	}

	// Verify does not compose with frames.
	err = svc.DoStream(context.Background(), &RunRequest{Spec: testSpec2D(), Frames: 3, Verify: true}, func(*FrameResult) error { return nil })
	var se *Error
	if !errors.As(err, &se) || se.Status != 400 {
		t.Fatalf("verify+frames: err = %v, want 400", err)
	}

	// The gauntlet left the process healthy: a good stream still runs.
	frames, err := collectFrames(t, svc, &RunRequest{Spec: testSpec2D(), Frames: 2, Output: OutputNone})
	if err != nil || len(frames) != 2 {
		t.Fatalf("good stream after gauntlet: %d frames, err %v", len(frames), err)
	}
}

// TestStreamFrames: a direct DoStream sequence delivers in-order frames,
// frame 0 carries the program identity, dirty-rectangle frames skip
// tiles, and frame 0 of a no-ROI stream matches the single-shot result
// for the same request (same program, same seed, same inputs).
func TestStreamFrames(t *testing.T) {
	svc := New(Config{})
	defer svc.Close(context.Background())

	single, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec2D(), Tiles: []int64{16, 16}})
	if err != nil {
		t.Fatal(err)
	}

	req := &RunRequest{
		Spec:   testSpec2D(),
		Tiles:  []int64{16, 16},
		Frames: 4,
		ROI:    [][2]int64{{24, 39}, {24, 39}},
	}
	frames, err := collectFrames(t, svc, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4", len(frames))
	}
	for i, fr := range frames {
		if fr.Frame != i {
			t.Fatalf("frame %d delivered at position %d", fr.Frame, i)
		}
		if len(fr.Outputs) == 0 {
			t.Fatalf("frame %d has no outputs", i)
		}
	}
	if frames[0].Pipeline == "" || frames[0].Key == "" {
		t.Errorf("frame 0 missing program identity: %+v", frames[0])
	}
	if !frames[0].Cached {
		t.Error("stream after single-shot run should hit the program cache (frames must not enter the cache key)")
	}
	if frames[1].Pipeline != "" || frames[1].Key != "" {
		t.Errorf("frame 1 repeats program identity: %+v", frames[1])
	}

	// Frame 0 is a whole-frame recompute of the same inputs the
	// single-shot run used: identical checksums.
	for name, o := range single.Outputs {
		if fo, ok := frames[0].Outputs[name]; !ok || fo.Checksum != o.Checksum {
			t.Errorf("frame 0 output %q checksum %s, single-shot %s", name, fo.Checksum, o.Checksum)
		}
	}

	// ROI frames engage partial recompute: tiles skipped, and the outputs
	// actually change frame over frame (the ROI region was refreshed).
	var skipped, executed int64
	for _, fr := range frames[1:] {
		skipped += fr.TilesSkipped
		executed += fr.TilesExecuted
		if fr.Pipeline != "" {
			t.Errorf("frame %d repeats program identity", fr.Frame)
		}
	}
	if skipped == 0 || executed == 0 {
		t.Errorf("ROI frames skipped=%d executed=%d, want both > 0", skipped, executed)
	}
	for name, o := range frames[1].Outputs {
		if frames[2].Outputs[name].Checksum == o.Checksum {
			t.Errorf("output %q unchanged between ROI frames — inputs did not evolve", name)
		}
	}

	// Determinism: the same request replays to the same per-frame sums.
	again, err := collectFrames(t, svc, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		for name, o := range frames[i].Outputs {
			if again[i].Outputs[name].Checksum != o.Checksum {
				t.Fatalf("frame %d output %q not deterministic across replays", i, name)
			}
		}
	}
}

// TestStreamHTTP drives the ndjson surface end-to-end: ?frames=N answers
// one FrameResult line per frame; malformed frames parameters answer 400
// before any line is written.
func TestStreamHTTP(t *testing.T) {
	svc := New(Config{})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body, _ := json.Marshal(&RunRequest{Spec: testSpec2D(), Tiles: []int64{16, 16}, ROI: [][2]int64{{8, 23}, {8, 23}}, Frames: 2})
	resp, err := http.Post(srv.URL+"/run?frames=3", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want ndjson", ct)
	}
	var lines []FrameResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var fr FrameResult
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		lines = append(lines, fr)
	}
	// The query parameter overrides the body's frame count.
	if len(lines) != 3 {
		t.Fatalf("got %d ndjson lines, want 3 (query overrides body)", len(lines))
	}
	for i, fr := range lines {
		if fr.Frame != i {
			t.Fatalf("line %d is frame %d", i, fr.Frame)
		}
	}
	if lines[1].TilesSkipped == 0 {
		t.Error("ROI frame over HTTP skipped no tiles")
	}

	for _, q := range []string{"frames=0", "frames=-1", "frames=many"} {
		r2, err := http.Post(srv.URL+"/run?"+q, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != 400 {
			t.Errorf("?%s status = %d, want 400", q, r2.StatusCode)
		}
	}
}

// TestStreamDeadlineMidflight: a stream that outlives its request
// deadline answers 503 after the frames already delivered; the abandoned
// frame finishes in the background, its admission slot and cache
// reference are released, and the next request succeeds.
func TestStreamDeadlineMidflight(t *testing.T) {
	svc := New(Config{MaxInFlight: 1, RequestTimeout: 250 * time.Millisecond})
	defer svc.Close(context.Background())

	// Warm the program with no hook installed.
	if _, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec2D()}); err != nil {
		t.Fatal(err)
	}
	svc.beforeRun = func(*RunRequest) { time.Sleep(80 * time.Millisecond) }

	var delivered int
	err := svc.DoStream(context.Background(), &RunRequest{Spec: testSpec2D(), Frames: 50, Output: OutputNone}, func(fr *FrameResult) error {
		delivered++
		return nil
	})
	se, ok := err.(*Error)
	if !ok || se.Status != 503 {
		t.Fatalf("mid-stream deadline: err = %v, want *Error 503", err)
	}
	if delivered == 0 || delivered >= 50 {
		t.Fatalf("delivered %d frames before expiry, want some but not all", delivered)
	}
	if svc.slows.Load() != 1 {
		t.Errorf("timeouts = %d, want 1", svc.slows.Load())
	}

	// The abandoned goroutine notices the caller is gone before its next
	// frame and winds down (the hook stays installed: clearing it here
	// would race the in-flight read).
	waitFor(t, "abandoned stream wound down", func() bool { return svc.inflight.Load() == 0 })
	if _, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec2D()}); err != nil {
		t.Fatalf("after abandoned stream: %v", err)
	}
}

// TestStreamEmitAbort: an emit error (the client went away) stops the
// sequence without wedging the slot.
func TestStreamEmitAbort(t *testing.T) {
	svc := New(Config{MaxInFlight: 1})
	defer svc.Close(context.Background())

	boom := fmt.Errorf("client hung up")
	var n int
	err := svc.DoStream(context.Background(), &RunRequest{Spec: testSpec2D(), Frames: 10, Output: OutputNone}, func(*FrameResult) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "client hung up") {
		t.Fatalf("err = %v, want emit failure", err)
	}
	waitFor(t, "aborted stream wound down", func() bool { return svc.inflight.Load() == 0 })
	if _, err := svc.Do(context.Background(), &RunRequest{Spec: testSpec2D()}); err != nil {
		t.Fatalf("after aborted stream: %v", err)
	}
}
