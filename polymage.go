// Package polymage is a Go implementation of PolyMage (Mullapudi, Vasista,
// Bondhugula — ASPLOS 2015): a domain-specific language and optimizing
// compiler for image processing pipelines. Pipelines are written as graphs
// of functions over multi-dimensional integer domains; the compiler checks
// bounds statically, inlines point-wise stages, partitions the graph into
// groups by a model-driven heuristic, executes each group with overlapped
// tiling and scratchpad storage, and parallelizes tiles over a worker pool.
//
// A minimal pipeline (3-point blur):
//
//	b := polymage.NewBuilder()
//	W := b.Param("W")
//	in := b.Image("in", polymage.Float, W.Affine())
//	x := b.Var("x")
//	blur := b.Func("blur", polymage.Float, []*polymage.Variable{x},
//	    []polymage.Interval{polymage.Span(polymage.ConstExpr(1), W.Affine().AddConst(-2))})
//	blur.Define(polymage.Case{E: polymage.Mul(1.0/3, polymage.Add(
//	    polymage.Add(in.At(polymage.Sub(x, 1)), in.At(x)), in.At(polymage.Add(x, 1))))})
//	pl, err := polymage.Compile(b, []string{"blur"}, polymage.Options{
//	    Estimates: map[string]int64{"W": 4096},
//	})
//	prog, err := pl.Bind(map[string]int64{"W": 4096}, polymage.ExecOptions{Fast: true})
//	out, err := prog.Run(map[string]*polymage.Buffer{"in": input})
//
// See the examples/ directory for complete programs, and DESIGN.md for how
// this implementation maps onto the paper.
package polymage

import (
	"repro/internal/affine"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/inline"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// Language constructs (Section 2 of the paper).
type (
	// Builder collects the declarations of one pipeline specification.
	Builder = dsl.Builder
	// Parameter is an integer pipeline parameter (e.g. image width).
	Parameter = dsl.Parameter
	// Variable is an integer loop variable labeling a function dimension.
	Variable = dsl.Variable
	// Interval is the range of a variable, affine in the parameters.
	Interval = dsl.Interval
	// Image declares a pipeline input.
	Image = dsl.Image
	// Function maps a multi-dimensional integer domain to scalar values.
	Function = dsl.Function
	// Case pairs a condition with a defining expression.
	Case = dsl.Case
	// Accumulator is the reduction construct (histograms etc.).
	Accumulator = dsl.Accumulator
	// ReduceOp is a reduction operator for Accumulate.
	ReduceOp = dsl.ReduceOp
	// Expr is a scalar expression.
	Expr = expr.Expr
	// Condition is a boolean condition over variables and parameters.
	Condition = expr.Cond
	// Type is a DSL element type.
	Type = expr.Type
	// AffineExpr is an affine expression over parameters (domain bounds).
	AffineExpr = affine.Expr
	// Buffer is an N-dimensional array exchanged with pipelines. Storage
	// is float32 unless bitwidth inference (ExecOptions.NarrowTypes)
	// narrowed the pipeline, in which case buffers carry uint8, uint16 or
	// int32 elements; see Elem and NewBufferElem.
	Buffer = engine.Buffer
	// Elem is a buffer element type (ElemF32, ElemU8, ElemU16, ElemI32).
	Elem = engine.Elem
	// Box is a concrete N-dimensional index region.
	Box = affine.Box
	// Range is a concrete 1-D index interval.
	Range = affine.Range
)

// Element types.
const (
	Float  = expr.Float
	Double = expr.Double
	Int    = expr.Int
	UInt   = expr.UInt
	Char   = expr.Char
	UChar  = expr.UChar
	Short  = expr.Short
)

// Reduction operators for Accumulator definitions. The Reduce prefix keeps
// them distinct from the expression helpers Min, Max and Mul below.
const (
	ReduceSum  = dsl.SumOp
	ReduceMin  = dsl.MinOp
	ReduceMax  = dsl.MaxOp
	ReduceProd = dsl.MulOp
)

// NewBuilder returns an empty pipeline specification.
func NewBuilder() *Builder { return dsl.NewBuilder() }

// ConstExpr returns a constant affine expression (for domain bounds).
func ConstExpr(v int64) AffineExpr { return affine.Const(v) }

// ParamExpr returns the named parameter as an affine expression.
func ParamExpr(name string) AffineExpr { return affine.Param(name) }

// Span builds an interval from affine bounds; ConstSpan from constants.
var (
	Span      = dsl.Span
	ConstSpan = dsl.ConstSpan
)

// Expression helpers (see internal/dsl for details). The arithmetic helpers
// Add, Sub, Mul, Div, Min and Max accept Expr, *Variable, *Parameter and Go
// numbers uniformly.
var (
	E          = dsl.E
	Add        = dsl.Add
	Sub        = dsl.Sub
	Mul        = dsl.Mul
	Div        = dsl.Div
	IDiv       = dsl.IDiv
	Neg        = dsl.Neg
	Min        = dsl.Min
	Max        = dsl.Max
	Abs        = dsl.Abs
	Sqrt       = dsl.Sqrt
	Exp        = dsl.Exp
	Log        = dsl.Log
	Pow        = dsl.Pow
	Cast       = dsl.Cast
	Clamp      = dsl.Clamp
	Sel        = dsl.Sel
	Cond       = dsl.Cond
	And        = dsl.And
	Or         = dsl.Or
	Not        = dsl.Not
	InBox      = dsl.InBox
	Stencil    = dsl.Stencil
	SeparableX = dsl.SeparableX
	SeparableY = dsl.SeparableY
)

// Options configures compilation; see core.Options.
type Options = core.Options

// ScheduleOptions tunes grouping and overlapped tiling.
type ScheduleOptions = schedule.Options

// InlineOptions tunes point-wise inlining.
type InlineOptions = inline.Options

// AutoScheduleOptions tunes the cost-model auto-scheduler's beam search
// (ScheduleOptions.Auto / ScheduleOptions.AutoOpts): beam width, tile-size
// candidates, cache budget and the model coefficients.
type AutoScheduleOptions = schedule.AutoOptions

// CostWeights are the auto-scheduler's model coefficients — the relative
// price of compute, halo recompute, memory traffic, idle parallelism and
// cache-footprint excess. internal/autotune (cmd/polymage-tune -fit) fits
// them from measured schedule sweeps.
type CostWeights = schedule.CostWeights

// ScheduleAuto returns ScheduleOptions with the cost-model auto-scheduler
// enabled: instead of Algorithm 1's single overlap-threshold cut, a
// deterministic beam search over stage grouping, per-group tile sizes and
// inlining picks the cheapest schedule under an analytical cost model
// (memory traffic, redundant halo recompute, parallelism against the
// worker fleet, cache footprint). Compile with
//
//	polymage.Compile(b, outs, polymage.Options{
//		Estimates: params,
//		Schedule:  polymage.ScheduleAuto(),
//	})
//
// The search is deterministic for fixed options; Program.Stats reports
// the chosen schedule's model cost and search effort.
func ScheduleAuto() ScheduleOptions {
	so := schedule.DefaultOptions()
	so.Auto = true
	return so
}

// ExecOptions configures execution (threads, fast kernels).
type ExecOptions = engine.ExecOptions

// Tiling strategies for fused groups (the Figure 5 comparison).
const (
	// OverlappedTiling is the paper's strategy: parallel tiles that
	// recompute the overlap region (default).
	OverlappedTiling = engine.OverlappedTiling
	// ParallelogramTiling runs tiles sequentially with no recomputation.
	ParallelogramTiling = engine.ParallelogramTiling
	// SplitTiling evaluates tiles in two phases with no recomputation.
	SplitTiling = engine.SplitTiling
)

// Pipeline is a compiled pipeline specification.
type Pipeline = core.Pipeline

// Program is a pipeline lowered for a concrete parameter binding.
// Program.Run is safe for concurrent use; for serving workloads that run
// one compiled pipeline many times, use Program.Executor — the persistent
// runtime whose worker pool and buffer arena make repeated runs nearly
// allocation-free (recycle outputs with Executor.Recycle) — and release it
// with Program.Close when done.
type Program = engine.Program

// Executor is a Program's persistent execution runtime: a long-lived
// worker pool plus a cross-run buffer arena. See Program.Executor.
type Executor = engine.Executor

// Streaming execution over frame sequences (Executor.NewStream and
// Executor.RunFrames): buffers, scratchpads and worker state are reused
// frame-to-frame; StreamOptions.Feedback binds an input image to the
// previous frame's output (sliding-window temporal stencils such as heat
// relaxation or exponential motion blur); and a Frame carrying an ROI —
// the rectangle outside which the caller promises nothing changed —
// recomputes only the tiles whose reads reach the change, copying every
// other tile from the previous frame's retained buffers.
type (
	// Stream is an open frame sequence on an Executor; see
	// Executor.NewStream.
	Stream = engine.Stream
	// StreamOptions configures a Stream (feedback bindings).
	StreamOptions = engine.StreamOptions
	// StreamStats counts a stream's frames and its dirty-rectangle tile
	// decisions (recomputed vs copied).
	StreamStats = engine.StreamStats
	// Frame is one step of Executor.RunFrames: its inputs and an optional
	// changed-region ROI.
	Frame = engine.Frame
)

// Compile runs the PolyMage compiler phases (Figure 4 of the paper) on a
// specification: graph construction, bounds checking, inlining, grouping
// and overlapped-tiling schedule construction.
//
// Two option structs split the surface by phase. Options (with its nested
// ScheduleOptions and InlineOptions) is consumed here, at Compile time: it
// shapes the schedule — grouping, tile sizes, inlining — and therefore the
// compiled Pipeline itself. ExecOptions is consumed later, at
// Pipeline.Bind: it configures how a bound Program executes — thread
// count, the fast fused-kernel path (Fast), evaluator tier toggles
// (NoRowVM, NoGenKernels), metrics — without changing what is computed.
// Anything that alters results or the schedule belongs in Options;
// anything that only alters execution strategy belongs in ExecOptions.
// The schedule hash that keys ahead-of-time generated kernels (see
// cmd/polymage-gen) covers the former and ignores the latter.
//
// Compile and Pipeline.Bind never panic on a malformed specification:
// internal panics from the DSL layer or the compiler phases are recovered
// and returned as errors carrying the panic message and the offending
// stage's name. An incomplete parameter binding is rejected at Bind time
// with an error satisfying errors.Is(err, ErrUnboundParam). Long-lived
// servers compiling untrusted specifications rely on both guarantees; see
// internal/service and cmd/polymage-serve for the HTTP serving layer
// built on them (compiled-program cache, bounded admission, /healthz and
// /metrics).
func Compile(b *Builder, outputs []string, opts Options) (*Pipeline, error) {
	return core.Compile(b, outputs, opts)
}

// Buffer element types. A pipeline compiled with ExecOptions.NarrowTypes
// stores uint8/uint16/int32 stages natively and requires input buffers in
// the image's declared element type (a UChar image takes an ElemU8
// buffer); everything else uses ElemF32.
const (
	ElemF32 = engine.ElemF32
	ElemU8  = engine.ElemU8
	ElemU16 = engine.ElemU16
	ElemI32 = engine.ElemI32
)

// NewBuffer allocates a float32 buffer covering box. It is the usual
// buffer constructor; for parametric shapes use Image.NewBuffer (one input
// image) or Pipeline.NewInputs (every input at once).
func NewBuffer(box Box) *Buffer { return engine.NewBuffer(box) }

// NewBufferElem allocates a buffer covering box with the given element
// type (narrow input images for NarrowTypes pipelines).
func NewBufferElem(box Box, elem Elem) *Buffer { return engine.NewBufferElem(box, elem) }

// ConvertBuffer returns a copy of src with the given element type,
// converting each element with the saturating-cast semantics of the runtime
// (float32 widening is exact for 8/16-bit values).
func ConvertBuffer(src *Buffer, elem Elem) *Buffer { return engine.ConvertBuffer(src, elem) }

// FillPattern writes a deterministic pseudo-random pattern (synthetic
// input images for tests and benchmarks).
func FillPattern(b *Buffer, seed int64) { engine.FillPattern(b, seed) }

// Sentinel errors. Errors returned by the runtime wrap these; test with
// errors.Is.
var (
	// ErrClosed reports a Run or Recycle on a closed Program/Executor.
	ErrClosed = engine.ErrClosed
	// ErrNilInput reports a missing or nil input buffer passed to Run.
	ErrNilInput = engine.ErrNilInput
	// ErrShape reports an input buffer whose box does not match the
	// image's domain under the bound parameters.
	ErrShape = engine.ErrShape
	// ErrUnknownStage reports a stage or image name the pipeline does not
	// declare.
	ErrUnknownStage = engine.ErrUnknownStage
	// ErrROI reports a dirty-rectangle ROI that cannot describe any input
	// image's change (rank mismatch with every non-feedback input). The
	// serving layer's request-validation errors wrap it, so errors.Is
	// against ErrROI classifies ROI failures from the engine and the HTTP
	// service alike.
	ErrROI = engine.ErrROI
	// ErrFrames reports an invalid frame sequence (empty, or a frame
	// count a serving layer rejects). Like ErrROI it roots one errors.Is
	// family spanning the engine and the serving layer.
	ErrFrames = engine.ErrFrames
	// ErrUnboundParam reports a parameter with no value in a binding.
	ErrUnboundParam = affine.ErrUnboundParam
)

// Observability. Compile with ExecOptions.Metrics to count kernel time,
// points, tiles and recomputation per stage (Executor.Snapshot); with
// ExecOptions.Profile to label CPU profiles per stage; Program.Stats
// reports the schedule model (compile-phase times, per-group overlap) with
// no execution at all.
type (
	// Trace is an ordered list of named wall-time phases (compiler phases,
	// lowering phases).
	Trace = obs.Trace
	// Snapshot is a point-in-time view of an Executor's metrics.
	Snapshot = obs.Snapshot
	// StageStats is one stage's executor counters within a Snapshot.
	StageStats = obs.StageStats
	// GroupStats is one group's executor counters within a Snapshot.
	GroupStats = obs.GroupStats
	// WorkerStats summarizes worker-pool utilization within a Snapshot.
	WorkerStats = obs.WorkerStats
	// ArenaStats counts buffer-arena hits, misses and pooled storage.
	ArenaStats = obs.ArenaStats
	// ProgramStats is the static schedule model from Program.Stats.
	ProgramStats = obs.ProgramStats
	// GroupModel is one group's schedule model within ProgramStats.
	GroupModel = obs.GroupModel
)
