package polymage_test

import (
	"strings"
	"testing"

	polymage "repro"
)

// TestPublicAPIQuickstart exercises the documented public surface: build,
// compile, bind, run, inspect.
func TestPublicAPIQuickstart(t *testing.T) {
	b := polymage.NewBuilder()
	W := b.Param("W")
	in := b.Image("in", polymage.Float, W.Affine())
	x := b.Var("x")
	dom := []polymage.Interval{polymage.Span(polymage.ConstExpr(1), W.Affine().AddConst(-2))}

	blur := b.Func("blur", polymage.Float, []*polymage.Variable{x}, dom)
	blur.Define(polymage.Case{E: polymage.Mul(1.0/3,
		polymage.Add(polymage.Add(in.At(polymage.Sub(x, 1)), in.At(x)), in.At(polymage.Add(x, 1))))})
	sharp := b.Func("sharp", polymage.Float, []*polymage.Variable{x}, dom)
	sharp.Define(polymage.Case{E: polymage.Sub(polymage.Mul(2, in.At(x)), blur.At(x))})

	pl, err := polymage.Compile(b, []string{"sharp"}, polymage.Options{
		Estimates: map[string]int64{"W": 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	summary := strings.Join(pl.GroupSummary(), "\n")
	if !strings.Contains(summary, "sharp") {
		t.Errorf("group summary missing sharp: %s", summary)
	}

	params := map[string]int64{"W": 1024}
	for _, fast := range []bool{false, true} {
		prog, err := pl.Bind(params, polymage.ExecOptions{Fast: fast, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		input, err := in.NewBuffer(params)
		if err != nil {
			t.Fatal(err)
		}
		polymage.FillPattern(input, 1)
		out, err := prog.Run(map[string]*polymage.Buffer{"in": input})
		if err != nil {
			t.Fatal(err)
		}
		res := out["sharp"]
		if res == nil || res.Len() != 1022 {
			t.Fatalf("fast=%v: bad output %+v", fast, res)
		}
		// Spot check: sharp(x) = 2 in(x) - (in(x-1)+in(x)+in(x+1))/3.
		wantF := 2*float64(input.At(5)) - (float64(input.At(4))+float64(input.At(5))+float64(input.At(6)))/3
		if d := float64(res.At(5)) - wantF; d > 1e-5 || d < -1e-5 {
			t.Errorf("fast=%v: sharp(5) = %v, want %v", fast, res.At(5), wantF)
		}
	}
}

// TestPublicAPIErrors checks that the public compile path surfaces
// specification errors.
func TestPublicAPIErrors(t *testing.T) {
	b := polymage.NewBuilder()
	W := b.Param("W")
	in := b.Image("in", polymage.Float, W.Affine())
	x := b.Var("x")
	// Out-of-bounds access: f(x) = in(x+1) over the full extent.
	f := b.Func("f", polymage.Float, []*polymage.Variable{x},
		[]polymage.Interval{polymage.Span(polymage.ConstExpr(0), W.Affine().AddConst(-1))})
	f.Define(polymage.Case{E: in.At(polymage.Add(x, 1))})
	_, err := polymage.Compile(b, []string{"f"}, polymage.Options{
		Estimates: map[string]int64{"W": 100},
	})
	if err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Errorf("expected bounds error, got %v", err)
	}

	// Unknown output stage.
	b2 := polymage.NewBuilder()
	if _, err := polymage.Compile(b2, []string{"ghost"}, polymage.Options{}); err == nil {
		t.Error("expected error for unknown output")
	}
}

// TestPublicAPIReduction exercises Accumulator through the facade.
func TestPublicAPIReduction(t *testing.T) {
	b := polymage.NewBuilder()
	N := b.Param("N")
	in := b.Image("in", polymage.Float, N.Affine())
	x, v := b.Var("x"), b.Var("v")
	hist := b.Accum("hist", polymage.Int,
		[]*polymage.Variable{x},
		[]polymage.Interval{polymage.Span(polymage.ConstExpr(0), N.Affine().AddConst(-1))},
		[]*polymage.Variable{v},
		[]polymage.Interval{polymage.ConstSpan(0, 9)})
	hist.Define([]any{polymage.Cast(polymage.Int, polymage.Mul(in.At(x), 9.999))}, 1, polymage.ReduceSum)
	pl, err := polymage.Compile(b, []string{"hist"}, polymage.Options{
		Estimates: map[string]int64{"N": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"N": 1000}
	prog, err := pl.Bind(params, polymage.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	input, err := in.NewBuffer(params)
	if err != nil {
		t.Fatal(err)
	}
	polymage.FillPattern(input, 2)
	out, err := prog.Run(map[string]*polymage.Buffer{"in": input})
	if err != nil {
		t.Fatal(err)
	}
	var total float32
	for _, c := range out["hist"].Data {
		total += c
	}
	if total != 1000 {
		t.Errorf("histogram counts sum to %v, want 1000", total)
	}
}
