package polymage_test

import (
	"hash/fnv"
	"math"
	"testing"

	polymage "repro"
)

// frameChecksum fingerprints a buffer's exact bit contents.
func frameChecksum(b *polymage.Buffer) uint64 {
	h := fnv.New64a()
	var raw [4]byte
	for _, v := range b.Data {
		bits := math.Float32bits(v)
		raw[0], raw[1], raw[2], raw[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		h.Write(raw[:])
	}
	return h.Sum64()
}

func cloneBuffer(b *polymage.Buffer) *polymage.Buffer {
	c := polymage.NewBuffer(b.Box)
	copy(c.Data, b.Data)
	return c
}

// buildHeatStep builds a single relaxation step of the heat example's
// diffusion (examples/heat iterates time inside the pipeline; here one
// frame is one step, closed into a loop by stream feedback): interior
// points move toward their neighborhood mean, the boundary is insulated.
// The step's domain equals the state image's, as feedback requires.
func buildHeatStep(t *testing.T, params map[string]int64) *polymage.Program {
	t.Helper()
	b := polymage.NewBuilder()
	N := b.Param("N")
	state := b.Image("state", polymage.Float, N.Affine(), N.Affine())
	x, y := b.Var("x"), b.Var("y")
	vars := []*polymage.Variable{x, y}
	dom := []polymage.Interval{
		polymage.Span(polymage.ConstExpr(0), N.Affine().AddConst(-1)),
		polymage.Span(polymage.ConstExpr(0), N.Affine().AddConst(-1)),
	}
	inner := polymage.InBox(vars, []any{1, 1}, []any{polymage.Sub(N, 2), polymage.Sub(N, 2)})
	at := func(dx, dy int) polymage.Expr {
		return state.At(polymage.Add(x, dx), polymage.Add(y, dy))
	}
	lap := polymage.Sub(
		polymage.Add(polymage.Add(at(-1, 0), at(1, 0)), polymage.Add(at(0, -1), at(0, 1))),
		polymage.Mul(4, at(0, 0)))
	step := b.Func("step", polymage.Float, vars, dom)
	step.Define(
		polymage.Case{Cond: inner, E: polymage.Add(at(0, 0), polymage.Mul(0.2, lap))},
		polymage.Case{E: at(0, 0)},
	)
	pl, err := polymage.Compile(b, []string{"step"}, polymage.Options{Estimates: params})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pl.Bind(params, polymage.ExecOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestStreamingHeatOracle is the feedback golden oracle: RunFrames with
// the state image fed back from the previous frame's output must match,
// bit for bit and frame by frame, the manual loop that runs a fresh
// whole-frame execution per step on an independent program — and the
// whole sequence's checksums must replay deterministically.
func TestStreamingHeatOracle(t *testing.T) {
	const frames = 6
	params := map[string]int64{"N": 96}
	prog := buildHeatStep(t, params)
	defer prog.Close()
	oracle := buildHeatStep(t, params)
	defer oracle.Close()

	seedState := func() *polymage.Buffer {
		in := polymage.NewBuffer(polymage.Box{{Lo: 0, Hi: 95}, {Lo: 0, Hi: 95}})
		for xx := int64(40); xx < 56; xx++ {
			for yy := int64(40); yy < 56; yy++ {
				in.Set(1, xx, yy)
			}
		}
		return in
	}

	// The manual loop: fresh execution per frame, output fed forward by
	// hand.
	want := make([]uint64, frames)
	cur := seedState()
	for f := 0; f < frames; f++ {
		out, err := oracle.Run(map[string]*polymage.Buffer{"state": cur})
		if err != nil {
			t.Fatal(err)
		}
		want[f] = frameChecksum(out["step"])
		cur = cloneBuffer(out["step"])
	}

	// The streamed loop: feedback closes state <- step across frames;
	// frame 0 supplies the seed.
	runStream := func() []uint64 {
		sums := make([]uint64, 0, frames)
		seq := make([]polymage.Frame, frames)
		inputs := map[string]*polymage.Buffer{"state": seedState()}
		for f := range seq {
			seq[f] = polymage.Frame{Inputs: inputs}
		}
		err := prog.Executor().RunFrames(seq, polymage.StreamOptions{Feedback: map[string]string{"state": "step"}},
			func(f int, out map[string]*polymage.Buffer) error {
				sums = append(sums, frameChecksum(out["step"]))
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}

	got := runStream()
	for f := range want {
		if got[f] != want[f] {
			t.Fatalf("frame %d: stream checksum %016x, fresh per-frame execution %016x", f, got[f], want[f])
		}
	}
	// Checksum determinism: an independent stream over the same sequence.
	for f, sum := range runStream() {
		if sum != want[f] {
			t.Fatalf("frame %d: replayed stream diverged: %016x vs %016x", f, sum, want[f])
		}
	}
}

// buildBlend builds a two-input blend + sharpen pair (a small cut of the
// blend example): blend is point-wise over the full images, sharp is a
// 3x3 stencil over the interior, both live-outs.
func buildBlend(t *testing.T, params map[string]int64) *polymage.Program {
	t.Helper()
	b := polymage.NewBuilder()
	N := b.Param("N")
	A := b.Image("A", polymage.Float, N.Affine(), N.Affine())
	B := b.Image("B", polymage.Float, N.Affine(), N.Affine())
	x, y := b.Var("x"), b.Var("y")
	vars := []*polymage.Variable{x, y}
	full := []polymage.Interval{
		polymage.Span(polymage.ConstExpr(0), N.Affine().AddConst(-1)),
		polymage.Span(polymage.ConstExpr(0), N.Affine().AddConst(-1)),
	}
	interior := []polymage.Interval{
		polymage.Span(polymage.ConstExpr(1), N.Affine().AddConst(-2)),
		polymage.Span(polymage.ConstExpr(1), N.Affine().AddConst(-2)),
	}
	blend := b.Func("blend", polymage.Float, vars, full)
	blend.Define(polymage.Case{E: polymage.Add(polymage.Mul(0.6, A.At(x, y)), polymage.Mul(0.4, B.At(x, y)))})
	sharp := b.Func("sharp", polymage.Float, vars, interior)
	box := polymage.Stencil(blend, 1.0/9, [][]float64{
		{1, 1, 1}, {1, 1, 1}, {1, 1, 1},
	}, [2]any{x, y})
	sharp.Define(polymage.Case{E: polymage.Sub(polymage.Mul(2, blend.At(x, y)), box)})
	pl, err := polymage.Compile(b, []string{"sharp", "blend"}, polymage.Options{
		Estimates: params,
		Schedule:  polymage.ScheduleOptions{TileSizes: []int64{16, 16}, MinSize: 1, MinTileExtent: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pl.Bind(params, polymage.ExecOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestStreamingBlendDirtyRect is the dirty-rectangle golden oracle on the
// blend pair: frames confine their input change to a small ROI, the
// stream recomputes only the tiles that change reaches (Stats must show
// skips), and every frame is bit-identical to a fresh whole-frame
// execution of the same inputs on an independent program.
func TestStreamingBlendDirtyRect(t *testing.T) {
	const frames = 4
	params := map[string]int64{"N": 128}
	prog := buildBlend(t, params)
	defer prog.Close()
	oracle := buildBlend(t, params)
	defer oracle.Close()

	box := polymage.Box{{Lo: 0, Hi: 127}, {Lo: 0, Hi: 127}}
	a, bb := polymage.NewBuffer(box), polymage.NewBuffer(box)
	polymage.FillPattern(a, 1)
	polymage.FillPattern(bb, 2)
	inputs := map[string]*polymage.Buffer{"A": a, "B": bb}
	roi := polymage.Box{{Lo: 48, Hi: 63}, {Lo: 80, Hi: 95}}

	st, err := prog.Executor().NewStream(polymage.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for f := 0; f < frames; f++ {
		var frameROI polymage.Box
		if f > 0 {
			// The frame's change: rewrite the ROI region of A.
			for xx := roi[0].Lo; xx <= roi[0].Hi; xx++ {
				for yy := roi[1].Lo; yy <= roi[1].Hi; yy++ {
					a.Set(float32(f)*0.25+float32(xx-yy)*0.01, xx, yy)
				}
			}
			frameROI = roi
		}
		out, err := st.RunFrame(inputs, frameROI)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		ref, err := oracle.Run(map[string]*polymage.Buffer{"A": cloneBuffer(a), "B": cloneBuffer(bb)})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"sharp", "blend"} {
			if ok, detail := out[name].Equal(ref[name], 0); !ok {
				t.Fatalf("frame %d output %q diverges from whole-frame execution: %s", f, name, detail)
			}
		}
	}

	stats := st.Stats()
	if stats.Frames != frames {
		t.Fatalf("stats frames = %d, want %d", stats.Frames, frames)
	}
	if stats.TilesSkipped == 0 || stats.TilesExecuted == 0 {
		t.Fatalf("dirty-rectangle frames: skipped=%d executed=%d, want both > 0", stats.TilesSkipped, stats.TilesExecuted)
	}
	if stats.TilesSkipped <= stats.TilesExecuted {
		t.Errorf("a 16x16 ROI on a 128x128 frame should skip more tiles than it recomputes: skipped=%d executed=%d",
			stats.TilesSkipped, stats.TilesExecuted)
	}
}
